"""A binary prefix trie keyed by IP prefixes.

This is the data structure at the heart of the paper's ``compress_roas``
algorithm (§7.1): one trie per (AS, address family), where each node
corresponds to a prefix and carries an optional value (for compression,
the ROA maxLength).

The trie is *path-preserving*: inserting ``10.0.0.0/16`` materializes the
sixteen interior nodes on the way down, but only nodes explicitly inserted
carry a value (``has_value`` is True).  The paper's notion of "direct
children" of a valued node — the nearest valued descendants on the 0-side
and 1-side — is provided by :meth:`TrieNode.direct_children`.

The structure is generic over the value type; the compression code stores
integers (maxLength), the RPKI validator stores lists of VRPs, and tests
store sentinel objects.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, Optional, TypeVar

from .errors import TrieError
from .prefix import Prefix

__all__ = ["PrefixTrie", "TrieNode"]

V = TypeVar("V")


class TrieNode(Generic[V]):
    """A node of :class:`PrefixTrie`.

    Attributes:
        prefix: the prefix this node represents.
        value: the stored value (meaningful only when ``has_value``).
        has_value: whether this node was explicitly inserted.
        left: child on the 0 bit, if materialized.
        right: child on the 1 bit, if materialized.
    """

    __slots__ = ("prefix", "value", "has_value", "left", "right", "parent")

    def __init__(self, prefix: Prefix, parent: Optional["TrieNode[V]"]) -> None:
        self.prefix = prefix
        self.value: Optional[V] = None
        self.has_value = False
        self.left: Optional[TrieNode[V]] = None
        self.right: Optional[TrieNode[V]] = None
        self.parent = parent

    def direct_children(
        self,
    ) -> tuple[Optional["TrieNode[V]"], Optional["TrieNode[V]"]]:
        """The nearest *valued* descendants on each side.

        Following §7.1 of the paper: for a node with key ``$k``, the left
        (right) direct child is the shortest-keyed valued node whose key
        extends ``$k || 0`` (``$k || 1``).  Interior unvalued nodes are
        skipped transparently, but a valued node bars the search from
        descending past it.
        """

        def nearest_valued(start: Optional[TrieNode[V]]) -> Optional[TrieNode[V]]:
            # BFS so that "shortest-keyed" wins; in practice the branching
            # is tiny because unvalued chains are linear.
            queue = [start] if start is not None else []
            best: Optional[TrieNode[V]] = None
            while queue:
                node = queue.pop(0)
                if node.has_value:
                    if best is None or node.prefix.length < best.prefix.length:
                        best = node
                    continue  # do not descend past a valued node
                if best is not None and node.prefix.length >= best.prefix.length:
                    continue
                if node.left is not None:
                    queue.append(node.left)
                if node.right is not None:
                    queue.append(node.right)
            return best

        return nearest_valued(self.left), nearest_valued(self.right)

    def __repr__(self) -> str:
        marker = f"={self.value!r}" if self.has_value else ""
        return f"<TrieNode {self.prefix}{marker}>"


class PrefixTrie(Generic[V]):
    """A binary trie mapping :class:`Prefix` keys to values.

    All prefixes in one trie must share an address family; mixing raises
    :class:`TrieError` (the paper builds one IPv4 trie and one IPv6 trie
    per AS, and so do we).
    """

    def __init__(self, family: int) -> None:
        self._family = family
        self._root = TrieNode[V](Prefix(family, 0, 0), None)
        self._size = 0

    @property
    def family(self) -> int:
        return self._family

    @property
    def root(self) -> TrieNode[V]:
        return self._root

    def __len__(self) -> int:
        """Number of valued nodes."""
        return self._size

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._find(prefix)
        return node is not None and node.has_value

    def _check_family(self, prefix: Prefix) -> None:
        if prefix.family != self._family:
            raise TrieError(
                f"prefix {prefix} (IPv{prefix.family}) inserted into "
                f"IPv{self._family} trie"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, prefix: Prefix, value: V) -> TrieNode[V]:
        """Insert or overwrite ``prefix`` with ``value``; returns the node."""
        self._check_family(prefix)
        node = self._root
        for bit in prefix.bits():
            if bit == "0":
                if node.left is None:
                    node.left = TrieNode(node.prefix.left_child(), node)
                node = node.left
            else:
                if node.right is None:
                    node.right = TrieNode(node.prefix.right_child(), node)
                node = node.right
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        return node

    def update(
        self, prefix: Prefix, combine: Callable[[Optional[V]], V]
    ) -> TrieNode[V]:
        """Insert ``prefix`` with ``combine(old_value)``.

        ``combine`` receives the existing value (or None when absent) and
        returns the new one; useful for max-merging maxLengths.
        """
        node = self._find(prefix, create=True)
        assert node is not None
        old = node.value if node.has_value else None
        if not node.has_value:
            self._size += 1
        node.value = combine(old)
        node.has_value = True
        return node

    def remove(self, prefix: Prefix) -> bool:
        """Remove the value at ``prefix``; returns True if it existed.

        Unvalued leaf chains left behind are pruned so that memory usage
        tracks the valued set.
        """
        node = self._find(prefix)
        if node is None or not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        self._prune(node)
        return True

    def unmark(self, node: TrieNode[V]) -> None:
        """Clear a node's value without pruning its subtree.

        Used by the compression algorithm, which deletes entries while a
        DFS is in flight and therefore must not restructure the trie.
        """
        if node.has_value:
            node.has_value = False
            node.value = None
            self._size -= 1

    def _prune(self, node: TrieNode[V]) -> None:
        while (
            node.parent is not None
            and not node.has_value
            and node.left is None
            and node.right is None
        ):
            parent = node.parent
            if parent.left is node:
                parent.left = None
            elif parent.right is node:
                parent.right = None
            node = parent

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _find(self, prefix: Prefix, create: bool = False) -> Optional[TrieNode[V]]:
        self._check_family(prefix)
        node = self._root
        for bit in prefix.bits():
            child = node.left if bit == "0" else node.right
            if child is None:
                if not create:
                    return None
                child = TrieNode(
                    node.prefix.left_child() if bit == "0" else node.prefix.right_child(),
                    node,
                )
                if bit == "0":
                    node.left = child
                else:
                    node.right = child
            node = child
        return node

    def get(self, prefix: Prefix, default: Optional[V] = None) -> Optional[V]:
        """The value stored exactly at ``prefix``, or ``default``."""
        node = self._find(prefix)
        if node is None or not node.has_value:
            return default
        return node.value

    def node_at(self, prefix: Prefix) -> Optional[TrieNode[V]]:
        """The valued node exactly at ``prefix``, or None."""
        node = self._find(prefix)
        if node is not None and node.has_value:
            return node
        return None

    def longest_match(self, prefix: Prefix) -> Optional[TrieNode[V]]:
        """The deepest valued node whose prefix covers ``prefix``."""
        self._check_family(prefix)
        node = self._root
        best: Optional[TrieNode[V]] = None
        if node.has_value:
            best = node
        for bit in prefix.bits():
            child = node.left if bit == "0" else node.right
            if child is None:
                break
            node = child
            if node.has_value:
                best = node
        return best

    def covering_nodes(self, prefix: Prefix) -> Iterator[TrieNode[V]]:
        """All valued nodes whose prefixes cover ``prefix``, shortest first."""
        self._check_family(prefix)
        node = self._root
        if node.has_value:
            yield node
        for bit in prefix.bits():
            child = node.left if bit == "0" else node.right
            if child is None:
                return
            node = child
            if node.has_value:
                yield node

    def covered_nodes(self, prefix: Prefix) -> Iterator[TrieNode[V]]:
        """All valued nodes covered by ``prefix`` (including at it)."""
        start = self._find(prefix)
        if start is None:
            return
        stack = [start]
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def items(self) -> Iterator[tuple[Prefix, V]]:
        """(prefix, value) pairs in DFS (sorted prefix) order."""
        for node in self.valued_nodes():
            assert node.value is not None or node.has_value
            yield node.prefix, node.value  # type: ignore[misc]

    def keys(self) -> Iterator[Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def valued_nodes(self) -> Iterator[TrieNode[V]]:
        """All valued nodes, left-to-right DFS preorder."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.has_value:
                yield node
            if node.right is not None:
                stack.append(node.right)
            if node.left is not None:
                stack.append(node.left)

    def postorder_nodes(self) -> Iterator[TrieNode[V]]:
        """All materialized nodes in postorder (children before parents).

        This is the traversal order required by Algorithm 1 of the paper:
        the compression function runs "as the DFS backtracks".
        """
        stack: list[tuple[TrieNode[V], bool]] = [(self._root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            if node.right is not None:
                stack.append((node.right, False))
            if node.left is not None:
                stack.append((node.left, False))

    def node_count(self) -> int:
        """Total number of materialized nodes (valued + interior)."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count
