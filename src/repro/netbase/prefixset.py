"""Sets of IP prefixes with covering-aware operations.

:class:`PrefixSet` is a thin but convenient layer over a pair of radix
trees (IPv4 + IPv6).  The RPKI analysis code uses it everywhere a bag of
prefixes must answer "is this announced?", "what covers this?", or
"aggregate these".
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .prefix import AF_INET, AF_INET6, Prefix
from .radix import RadixTree

__all__ = ["PrefixSet", "aggregate"]


class PrefixSet:
    """A mutable set of :class:`Prefix` values (both address families).

    Beyond plain membership, it answers the covering queries that RPKI
    semantics are built from:

    * :meth:`covers` — is some member a covering prefix of ``p``?
    * :meth:`most_specific_cover` — longest-prefix match.
    * :meth:`covered_by` — members inside ``p``.
    """

    def __init__(self, prefixes: Iterable[Prefix] = ()) -> None:
        self._trees = {
            AF_INET: RadixTree[bool](AF_INET),
            AF_INET6: RadixTree[bool](AF_INET6),
        }
        self._size = 0
        for prefix in prefixes:
            self.add(prefix)

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------

    def add(self, prefix: Prefix) -> None:
        tree = self._trees[prefix.family]
        if prefix not in tree:
            tree.insert(prefix, True)
            self._size += 1

    def discard(self, prefix: Prefix) -> None:
        if self._trees[prefix.family].remove(prefix):
            self._size -= 1

    def update(self, prefixes: Iterable[Prefix]) -> None:
        for prefix in prefixes:
            self.add(prefix)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._trees[prefix.family]

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Prefix]:
        for family in (AF_INET, AF_INET6):
            yield from self._trees[family].keys()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrefixSet):
            return NotImplemented
        return len(self) == len(other) and all(p in other for p in self)

    def __repr__(self) -> str:
        return f"PrefixSet({len(self)} prefixes)"

    # ------------------------------------------------------------------
    # Covering queries
    # ------------------------------------------------------------------

    def covers(self, prefix: Prefix) -> bool:
        """True if some member covers ``prefix`` (including equality)."""
        return self._trees[prefix.family].longest_match(prefix) is not None

    def covers_properly(self, prefix: Prefix) -> bool:
        """True if some member is a strict covering prefix of ``prefix``."""
        return any(
            member.length < prefix.length
            for member, _ in self._trees[prefix.family].covering(prefix)
        )

    def most_specific_cover(self, prefix: Prefix) -> Optional[Prefix]:
        """Longest member covering ``prefix``, or None."""
        match = self._trees[prefix.family].longest_match(prefix)
        return match[0] if match is not None else None

    def covering(self, prefix: Prefix) -> Iterator[Prefix]:
        """All members covering ``prefix``, shortest first."""
        for member, _ in self._trees[prefix.family].covering(prefix):
            yield member

    def covered_by(self, prefix: Prefix) -> Iterator[Prefix]:
        """All members covered by ``prefix`` (inclusive)."""
        for member, _ in self._trees[prefix.family].covered(prefix):
            yield member

    def ipv4(self) -> Iterator[Prefix]:
        yield from self._trees[AF_INET].keys()

    def ipv6(self) -> Iterator[Prefix]:
        yield from self._trees[AF_INET6].keys()


def aggregate(prefixes: Iterable[Prefix]) -> list[Prefix]:
    """Aggregate a prefix collection into its minimal equivalent cover.

    Two transformations are applied until fixpoint:

    1. drop any prefix covered by another member;
    2. merge sibling pairs into their parent.

    The result covers exactly the same address space with the fewest
    prefixes.  (Note this is *route* aggregation, not the paper's PDU
    compression — aggregation changes the authorized set of prefix
    lengths, so it must never be applied to ROA tuples; see
    :mod:`repro.core.compress` for the lossless variant.)
    """
    # Sort by (family, value, length): ancestors come right before
    # descendants, so one pass removes covered members.
    unique = sorted(set(prefixes))
    kept: list[Prefix] = []
    for prefix in unique:
        if kept and kept[-1].covers(prefix):
            continue
        kept.append(prefix)

    # Iteratively merge sibling pairs.  Each merge can enable another at
    # the parent level, so loop until stable.
    merged = True
    current = kept
    while merged:
        merged = False
        result: list[Prefix] = []
        index = 0
        while index < len(current):
            prefix = current[index]
            if (
                index + 1 < len(current)
                and prefix.length > 0
                and current[index + 1] == prefix.sibling()
                and prefix.is_left_child()
            ):
                result.append(prefix.parent())
                index += 2
                merged = True
            else:
                result.append(prefix)
                index += 1
        current = result
    return current
