"""Network primitives: prefixes, AS numbers, tries, radix trees.

This subpackage is dependency-free (standard library only) and provides
the value types everything else is built on.
"""

from .asnum import (
    AS_TRANS,
    MAX_ASN,
    format_asn,
    is_private_asn,
    is_reserved_asn,
    parse_asn,
    validate_asn,
)
from .errors import (
    AsnError,
    PrefixError,
    PrefixLengthError,
    PrefixParseError,
    ReproError,
    TrieError,
    ValidationError,
)
from .prefix import AF_INET, AF_INET6, Prefix
from .prefixset import PrefixSet, aggregate
from .radix import RadixTree
from .trie import PrefixTrie, TrieNode

__all__ = [
    "AF_INET",
    "AF_INET6",
    "AS_TRANS",
    "MAX_ASN",
    "AsnError",
    "Prefix",
    "PrefixError",
    "PrefixLengthError",
    "PrefixParseError",
    "PrefixSet",
    "PrefixTrie",
    "RadixTree",
    "ReproError",
    "TrieError",
    "TrieNode",
    "ValidationError",
    "aggregate",
    "format_asn",
    "is_private_asn",
    "is_reserved_asn",
    "parse_asn",
    "validate_asn",
]
