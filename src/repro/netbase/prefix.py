"""IP prefix primitives for IPv4 and IPv6.

This module implements :class:`Prefix`, the fundamental value type of the
whole library.  A prefix is an (address-family, network-bits, length)
triple; we store the network address as a plain Python integer, which makes
containment tests, sibling arithmetic, and trie keys cheap bit operations.

The implementation is self-contained (it does not wrap :mod:`ipaddress`)
because the compression algorithm of the paper (§7) and the RPKI data
structures need direct access to the bit-level representation: trie keys,
direct children, and sibling prefixes.

Examples:
    >>> p = Prefix.parse("168.122.0.0/16")
    >>> p.covers(Prefix.parse("168.122.225.0/24"))
    True
    >>> str(p.left_child())
    '168.122.0.0/17'
    >>> str(p.right_child())
    '168.122.128.0/17'
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

from .errors import PrefixLengthError, PrefixParseError

__all__ = ["Prefix", "AF_INET", "AF_INET6"]

AF_INET = 4
AF_INET6 = 6

_MAX_LENGTH = {AF_INET: 32, AF_INET6: 128}


def _parse_ipv4(text: str) -> int:
    """Parse a dotted-quad IPv4 address into an integer.

    Raises:
        PrefixParseError: if the text is not a valid dotted quad.
    """
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixParseError(text, "IPv4 address must have four octets")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise PrefixParseError(text, f"bad octet {part!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixParseError(text, f"octet {octet} out of range")
        value = (value << 8) | octet
    return value


def _format_ipv4(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _parse_ipv6(text: str) -> int:
    """Parse an IPv6 address (RFC 4291 text form) into an integer.

    Supports ``::`` compression and an embedded IPv4 tail
    (e.g. ``::ffff:192.0.2.1``).
    """
    if text.count("::") > 1:
        raise PrefixParseError(text, "more than one '::'")

    head_text, sep, tail_text = text.partition("::")
    head = head_text.split(":") if head_text else []
    tail = tail_text.split(":") if tail_text else []
    if not sep and len(head) != 8 and not (head and "." in head[-1]):
        if len(head) != 8:
            raise PrefixParseError(text, "wrong number of groups")

    def expand(groups: list[str]) -> list[int]:
        words: list[int] = []
        for index, group in enumerate(groups):
            if "." in group:
                if index != len(groups) - 1:
                    raise PrefixParseError(text, "IPv4 tail must be last")
                v4 = _parse_ipv4(group)
                words.append(v4 >> 16)
                words.append(v4 & 0xFFFF)
                continue
            if not group or len(group) > 4:
                raise PrefixParseError(text, f"bad group {group!r}")
            try:
                word = int(group, 16)
            except ValueError:
                raise PrefixParseError(text, f"bad group {group!r}") from None
            words.append(word)
        return words

    head_words = expand(head)
    tail_words = expand(tail)
    if sep:
        missing = 8 - len(head_words) - len(tail_words)
        if missing < 1:
            raise PrefixParseError(text, "'::' must compress at least one group")
        words = head_words + [0] * missing + tail_words
    else:
        words = head_words
    if len(words) != 8:
        raise PrefixParseError(text, "wrong number of groups")

    value = 0
    for word in words:
        value = (value << 16) | word
    return value


def _format_ipv6(value: int) -> str:
    """Format an integer as canonical (RFC 5952) IPv6 text."""
    words = [(value >> (16 * (7 - i))) & 0xFFFF for i in range(8)]

    # Find the longest run of zero words (length >= 2) for '::' compression.
    best_start, best_len = -1, 0
    run_start, run_len = -1, 0
    for index, word in enumerate(words):
        if word == 0:
            if run_start < 0:
                run_start, run_len = index, 0
            run_len += 1
            if run_len > best_len:
                best_start, best_len = run_start, run_len
        else:
            run_start, run_len = -1, 0

    if best_len >= 2:
        head = ":".join(f"{w:x}" for w in words[:best_start])
        tail = ":".join(f"{w:x}" for w in words[best_start + best_len:])
        return f"{head}::{tail}"
    return ":".join(f"{w:x}" for w in words)


@total_ordering
class Prefix:
    """An immutable IP prefix: address family, network address, length.

    The network address is normalized: any bits beyond ``length`` are
    cleared during construction, so two textual spellings of the same
    network compare equal.

    Ordering sorts by (family, network-integer, length), which groups
    covering prefixes immediately before their subprefixes — convenient
    for building tries and for deterministic output.
    """

    __slots__ = ("_family", "_value", "_length")

    def __init__(self, family: int, value: int, length: int) -> None:
        if family not in _MAX_LENGTH:
            raise PrefixParseError(str(value), f"unknown family {family}")
        max_length = _MAX_LENGTH[family]
        if not 0 <= length <= max_length:
            raise PrefixLengthError(
                f"length {length} out of range for IPv{family} (0..{max_length})"
            )
        if not 0 <= value < (1 << max_length):
            raise PrefixParseError(hex(value), "address out of range")
        mask = ((1 << length) - 1) << (max_length - length) if length else 0
        self._family = family
        self._value = value & mask
        self._length = length

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"a.b.c.d/len"`` or ``"x:y::/len"`` into a Prefix.

        A bare address (no ``/len``) is treated as a host prefix
        (/32 for IPv4, /128 for IPv6).
        """
        text = text.strip()
        address_text, sep, length_text = text.partition("/")
        family = AF_INET6 if ":" in address_text else AF_INET
        if family == AF_INET6:
            value = _parse_ipv6(address_text)
        else:
            value = _parse_ipv4(address_text)
        if sep:
            if not length_text.isdigit():
                raise PrefixParseError(text, "bad length")
            length = int(length_text)
        else:
            length = _MAX_LENGTH[family]
        if length > _MAX_LENGTH[family]:
            raise PrefixLengthError(
                f"length {length} out of range for IPv{family} in {text!r}"
            )
        return cls(family, value, length)

    @classmethod
    def from_bits(cls, family: int, bits: str) -> "Prefix":
        """Build a prefix from a binary string of network bits.

        ``bits`` is the most-significant ``len(bits)`` bits of the network
        address; e.g. ``Prefix.from_bits(4, "1010")`` is ``160.0.0.0/4``.
        An empty string yields the default route ``0.0.0.0/0``.
        """
        max_length = _MAX_LENGTH[family]
        length = len(bits)
        if length > max_length:
            raise PrefixLengthError(f"{length} bits exceeds IPv{family} width")
        value = int(bits, 2) << (max_length - length) if bits else 0
        return cls(family, value, length)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def family(self) -> int:
        """Address family: 4 or 6."""
        return self._family

    @property
    def value(self) -> int:
        """The network address as an integer (host bits are zero)."""
        return self._value

    @property
    def length(self) -> int:
        """The prefix length in bits."""
        return self._length

    @property
    def max_family_length(self) -> int:
        """32 for IPv4, 128 for IPv6."""
        return _MAX_LENGTH[self._family]

    @property
    def is_ipv4(self) -> bool:
        return self._family == AF_INET

    @property
    def is_ipv6(self) -> bool:
        return self._family == AF_INET6

    def bits(self) -> str:
        """The network bits as a binary string of length ``self.length``."""
        if self._length == 0:
            return ""
        shifted = self._value >> (self.max_family_length - self._length)
        return format(shifted, f"0{self._length}b")

    def network_address(self) -> str:
        """Dotted-quad / RFC 5952 text of the network address."""
        if self._family == AF_INET:
            return _format_ipv4(self._value)
        return _format_ipv6(self._value)

    # ------------------------------------------------------------------
    # Containment and relations
    # ------------------------------------------------------------------

    def covers(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or a subprefix of this prefix.

        This is the RPKI "covering" relation (RFC 6811): the families
        match, this prefix is no longer than ``other``, and the first
        ``self.length`` bits agree.
        """
        if self._family != other._family:
            return False
        if self._length > other._length:
            return False
        if self._length == 0:
            return True
        shift = self.max_family_length - self._length
        return (self._value >> shift) == (other._value >> shift)

    def covers_properly(self, other: "Prefix") -> bool:
        """True if ``other`` is a strict subprefix (longer and covered)."""
        return self._length < other._length and self.covers(other)

    def overlaps(self, other: "Prefix") -> bool:
        """True if the address ranges intersect (one covers the other)."""
        return self.covers(other) or other.covers(self)

    def parent(self) -> "Prefix":
        """The covering prefix one bit shorter.

        Raises:
            PrefixLengthError: for the zero-length (default) route.
        """
        if self._length == 0:
            raise PrefixLengthError("the default route has no parent")
        return Prefix(self._family, self._value, self._length - 1)

    def sibling(self) -> "Prefix":
        """The other child of this prefix's parent (flip the last bit)."""
        if self._length == 0:
            raise PrefixLengthError("the default route has no sibling")
        bit = 1 << (self.max_family_length - self._length)
        return Prefix(self._family, self._value ^ bit, self._length)

    def left_child(self) -> "Prefix":
        """The subprefix one bit longer with the new bit = 0."""
        if self._length >= self.max_family_length:
            raise PrefixLengthError("host prefix has no children")
        return Prefix(self._family, self._value, self._length + 1)

    def right_child(self) -> "Prefix":
        """The subprefix one bit longer with the new bit = 1."""
        if self._length >= self.max_family_length:
            raise PrefixLengthError("host prefix has no children")
        bit = 1 << (self.max_family_length - self._length - 1)
        return Prefix(self._family, self._value | bit, self._length + 1)

    def is_left_child(self) -> bool:
        """True if this prefix is the 0-side child of its parent."""
        if self._length == 0:
            return False
        bit = 1 << (self.max_family_length - self._length)
        return not (self._value & bit)

    def subprefixes(self, length: int) -> Iterator["Prefix"]:
        """Iterate all subprefixes of exactly the given length, in order.

        ``length`` must be >= ``self.length``.  The number of results is
        ``2 ** (length - self.length)``; callers sweeping to /32 should
        beware exponential blowup.
        """
        if length < self._length:
            raise PrefixLengthError(
                f"cannot enumerate shorter ({length}) subprefixes of /{self._length}"
            )
        if length > self.max_family_length:
            raise PrefixLengthError(f"length {length} exceeds family width")
        step = 1 << (self.max_family_length - length)
        count = 1 << (length - self._length)
        for index in range(count):
            yield Prefix(self._family, self._value + index * step, length)

    def count_subprefixes(self, length: int) -> int:
        """Number of subprefixes of exactly the given length (no iteration)."""
        if length < self._length:
            return 0
        if length > self.max_family_length:
            raise PrefixLengthError(f"length {length} exceeds family width")
        return 1 << (length - self._length)

    def first_address(self) -> int:
        """Integer of the lowest address in this prefix."""
        return self._value

    def last_address(self) -> int:
        """Integer of the highest address in this prefix."""
        host_bits = self.max_family_length - self._length
        return self._value | ((1 << host_bits) - 1)

    def truncate(self, length: int) -> "Prefix":
        """The covering prefix of the given (shorter or equal) length."""
        if length > self._length:
            raise PrefixLengthError(
                f"cannot truncate /{self._length} to longer /{length}"
            )
        return Prefix(self._family, self._value, length)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (
            self._family == other._family
            and self._value == other._value
            and self._length == other._length
        )

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self._family, self._value, self._length) < (
            other._family,
            other._value,
            other._length,
        )

    def __hash__(self) -> int:
        return hash((self._family, self._value, self._length))

    def __str__(self) -> str:
        return f"{self.network_address()}/{self._length}"

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"
