"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PrefixError",
    "PrefixParseError",
    "PrefixLengthError",
    "AsnError",
    "TrieError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class PrefixError(ReproError, ValueError):
    """Base class for IP-prefix related errors."""


class PrefixParseError(PrefixError):
    """A textual prefix could not be parsed.

    Attributes:
        text: the offending input string.
    """

    def __init__(self, text: str, reason: str = "") -> None:
        self.text = text
        message = f"invalid prefix {text!r}"
        if reason:
            message = f"{message}: {reason}"
        super().__init__(message)


class PrefixLengthError(PrefixError):
    """A prefix length or maxLength is out of range for the address family."""


class AsnError(ReproError, ValueError):
    """An AS number is malformed or out of the 32-bit range."""


class TrieError(ReproError):
    """An invariant of a prefix trie was violated."""


class ValidationError(ReproError):
    """An RPKI object failed validation (signature, resources, encoding)."""
