"""Autonomous System number handling.

AS numbers are 32-bit unsigned integers (RFC 6793).  We keep them as plain
``int`` throughout the library for speed, and use this module to validate
and format them at the edges (parsers, pretty-printers, generators).
"""

from __future__ import annotations

from .errors import AsnError

__all__ = [
    "MAX_ASN",
    "AS_TRANS",
    "validate_asn",
    "parse_asn",
    "format_asn",
    "is_private_asn",
    "is_reserved_asn",
]

MAX_ASN = 2**32 - 1

#: RFC 6793 transition AS number used by old 2-byte speakers.
AS_TRANS = 23456

_PRIVATE_RANGES = (
    (64512, 65534),          # RFC 6996 16-bit private use
    (4200000000, 4294967294),  # RFC 6996 32-bit private use
)

_RESERVED = frozenset({0, 65535, MAX_ASN})


def validate_asn(asn: int) -> int:
    """Return ``asn`` if it is a valid 32-bit AS number, else raise.

    Raises:
        AsnError: if ``asn`` is not an int in [0, 2^32 - 1].
    """
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise AsnError(f"AS number must be an int, got {type(asn).__name__}")
    if not 0 <= asn <= MAX_ASN:
        raise AsnError(f"AS number {asn} out of 32-bit range")
    return asn


def parse_asn(text: str) -> int:
    """Parse ``"65000"``, ``"AS65000"``, or asdot ``"1.10"`` into an int.

    The asdot notation (RFC 5396) writes a 32-bit ASN as
    ``<high16>.<low16>``.
    """
    text = text.strip()
    if text.upper().startswith("AS"):
        text = text[2:]
    if "." in text:
        high_text, _, low_text = text.partition(".")
        if not (high_text.isdigit() and low_text.isdigit()):
            raise AsnError(f"bad asdot AS number {text!r}")
        high, low = int(high_text), int(low_text)
        if high > 0xFFFF or low > 0xFFFF:
            raise AsnError(f"asdot component out of range in {text!r}")
        return (high << 16) | low
    if not text.isdigit():
        raise AsnError(f"bad AS number {text!r}")
    return validate_asn(int(text))


def format_asn(asn: int, asdot: bool = False) -> str:
    """Format an AS number as ``"AS65000"`` or asdot ``"AS1.10"``."""
    validate_asn(asn)
    if asdot and asn > 0xFFFF:
        return f"AS{asn >> 16}.{asn & 0xFFFF}"
    return f"AS{asn}"


def is_private_asn(asn: int) -> bool:
    """True for RFC 6996 private-use AS numbers."""
    validate_asn(asn)
    return any(low <= asn <= high for low, high in _PRIVATE_RANGES)


def is_reserved_asn(asn: int) -> bool:
    """True for AS 0 (RFC 7607), 65535, and 4294967295 (RFC 7300)."""
    validate_asn(asn)
    return asn in _RESERVED
