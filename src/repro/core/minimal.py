"""Minimal ROAs: conversion from the status quo to the safe configuration.

A ROA is *minimal* (RFC 6907 §3.2; paper §3) when it authorizes exactly
the prefixes its AS announces in BGP — no maxLength slack, no unused
entries.  Minimal ROAs are immune to the forged-origin subprefix hijack
because every authorized route actually exists and competes with any
forgery.

This module implements the conversions of §6–§7:

* :func:`to_minimal_vrps` — the dataset-level transformation behind
  Table 1 rows 3 and 5: every (prefix, origin) pair that is announced in
  BGP *and* valid under the current VRPs becomes one maxLength-free VRP.
* :func:`minimal_roa_for` — the per-ROA version of the same idea ("we
  just convert each original non-minimal ROA to a minimal ROA that has
  the set of prefixes announced in BGP"), preserving ROA granularity so
  no new ROAs or signatures are needed.
* :func:`additional_prefix_count` — the "13K additional prefixes"
  measurement of §6.
"""

from __future__ import annotations

from typing import Iterable

from ..netbase import Prefix, RadixTree
from ..rpki.roa import Roa, RoaPrefix
from ..rpki.vrp import Vrp

__all__ = [
    "OriginPair",
    "build_origin_index",
    "to_minimal_vrps",
    "minimal_roa_for",
    "additional_prefix_count",
]

#: One BGP routing-table entry reduced to what origin validation sees.
OriginPair = tuple[Prefix, int]


def build_origin_index(
    announced: Iterable[OriginPair],
) -> dict[int, RadixTree[set[int]]]:
    """Index announced (prefix, origin) pairs for covering queries.

    Returns one radix tree per address family mapping each announced
    prefix to the set of ASes that originate it (MOAS — multi-origin —
    prefixes do occur and must keep all origins).
    """
    index: dict[int, RadixTree[set[int]]] = {}
    for prefix, origin in announced:
        tree = index.get(prefix.family)
        if tree is None:
            tree = RadixTree[set[int]](prefix.family)
            index[prefix.family] = tree
        origins = tree.get(prefix)
        if origins is None:
            origins = set()
            tree.insert(prefix, origins)
        origins.add(origin)
    return index


def to_minimal_vrps(
    vrps: Iterable[Vrp], announced: Iterable[OriginPair]
) -> list[Vrp]:
    """Convert a VRP set to the equivalent minimal, maxLength-free set.

    The output contains one ``(p, len(p), asn)`` VRP for every announced
    pair ``(p, asn)`` that some input VRP matches (RFC 6811 "valid").
    Routes that were valid and announced stay valid; authorized-but-
    unannounced slack — the forged-origin subprefix hijack surface —
    disappears.
    """
    vrp_list = list(vrps)
    per_family: dict[int, RadixTree[list[Vrp]]] = {}
    for vrp in vrp_list:
        tree = per_family.get(vrp.prefix.family)
        if tree is None:
            tree = RadixTree[list[Vrp]](vrp.prefix.family)
            per_family[vrp.prefix.family] = tree
        bucket = tree.get(vrp.prefix)
        if bucket is None:
            bucket = []
            tree.insert(vrp.prefix, bucket)
        bucket.append(vrp)

    minimal: set[Vrp] = set()
    for prefix, origin in announced:
        tree = per_family.get(prefix.family)
        if tree is None:
            continue
        for _covering_prefix, bucket in tree.covering(prefix):
            if any(vrp.matches(prefix, origin) for vrp in bucket):
                minimal.add(Vrp(prefix, prefix.length, origin))
                break
    return sorted(minimal)


def minimal_roa_for(
    roa: Roa, announced: Iterable[OriginPair] | dict[int, RadixTree[set[int]]]
) -> Roa | None:
    """Shrink one ROA to exactly its announced-and-authorized prefixes.

    Returns the minimal ROA (same AS, no maxLength), or None when the
    AS announces nothing the ROA authorizes — in which case the ROA
    protects nothing and the paper's recommendation is to review it.
    """
    index = (
        announced
        if isinstance(announced, dict)
        else build_origin_index(announced)
    )
    kept: set[Prefix] = set()
    for entry in roa.prefixes:
        tree = index.get(entry.prefix.family)
        if tree is None:
            continue
        for announced_prefix, origins in tree.covered(entry.prefix):
            if (
                roa.asn in origins
                and announced_prefix.length <= entry.effective_max_length
            ):
                kept.add(announced_prefix)
    if not kept:
        return None
    return Roa(roa.asn, [RoaPrefix(prefix) for prefix in sorted(kept)])


def additional_prefix_count(
    vrps: Iterable[Vrp], announced: Iterable[OriginPair]
) -> int:
    """§6's "13K additional prefixes" measurement.

    Counts announced (prefix, origin) pairs that are valid under the
    VRPs but whose exact (prefix, origin) is not already an entry —
    i.e. the prefixes that would have to be *added* to ROAs if
    maxLength were eliminated and only minimal ROAs were used.
    """
    vrp_list = list(vrps)
    existing = {(vrp.prefix, vrp.asn) for vrp in vrp_list}
    minimal = to_minimal_vrps(vrp_list, announced)
    return sum(1 for vrp in minimal if (vrp.prefix, vrp.asn) not in existing)
