"""``compress_roas`` — lossless PDU compression (paper §7, Algorithm 1).

The paper's contribution: a drop-in post-processor for ``scan_roas``
output that *reintroduces* the maxLength attribute without reintroducing
its vulnerability.  Given a list of (prefix, maxLength, origin AS)
tuples, it merges sibling authorizations into their parent whenever the
merge authorizes **exactly** the same set of routes — never more.

The algorithm (§7.1): build one binary prefix trie per (origin AS,
address family), where each valued node carries its tuple's maxLength
(for tuples without maxLength, the prefix length itself).  Then run a
DFS; as it backtracks, each valued node with two valued direct children
absorbs them when their maxLengths allow::

    procedure compress(node):
        if node has both direct children:
            minChildVal = min(lChild.value, rChild.value)
            if minChildVal > node.value:
                node.value = minChildVal          # cover the children
            if lChild.value <= node.value: delete lChild
            if rChild.value <= node.value: delete rChild

Worked example (Figure 2 of the paper)::

    >>> from repro.netbase import Prefix
    >>> from repro.rpki import Vrp
    >>> tuples = [Vrp(Prefix.parse(p), l, 31283) for p, l in [
    ...     ("87.254.32.0/19", 19), ("87.254.32.0/20", 20),
    ...     ("87.254.48.0/20", 20), ("87.254.32.0/21", 21)]]
    >>> [str(v) for v in compress_vrps(tuples)]
    ['87.254.32.0/19-20 => AS31283', '87.254.32.0/21 => AS31283']

Why this is safe (and plain maxLength is not): the parent absorbs its
children only when *both* halves at every absorbed length were already
authorized, so the set of (prefix, origin) pairs that validate is
unchanged — compression preserves minimality (§7: "This 'compressed'
ROA is still minimal").

This module also provides :func:`compress_vrps_optimal`, an extension
beyond the paper: a provably minimum-size lossless representation, used
by the ablation benchmarks to measure how close Algorithm 1 gets.
"""

from __future__ import annotations

from typing import Iterable

from ..netbase import Prefix, PrefixTrie
from ..netbase.errors import PrefixLengthError
from ..rpki.vrp import Vrp

__all__ = [
    "build_tries",
    "compress_trie",
    "compress_vrps",
    "compress_vrps_optimal",
    "CompressionStats",
]


def build_tries(vrps: Iterable[Vrp]) -> dict[tuple[int, int], PrefixTrie[int]]:
    """Group VRPs into per-(origin AS, family) tries keyed by prefix.

    Duplicate prefixes for the same AS keep the larger maxLength (the
    union of what the duplicates authorize).
    """
    tries: dict[tuple[int, int], PrefixTrie[int]] = {}
    for vrp in vrps:
        key = (vrp.asn, vrp.prefix.family)
        trie = tries.get(key)
        if trie is None:
            trie = PrefixTrie[int](vrp.prefix.family)
            tries[key] = trie
        trie.update(
            vrp.prefix,
            lambda old, new=vrp.max_length: new if old is None else max(old, new),
        )
    return tries


def compress_trie(trie: PrefixTrie[int]) -> None:
    """Run Algorithm 1 in place on one trie.

    Iterates the trie in postorder — equivalently, "as the DFS
    backtracks" — and applies the compression function at every valued
    node.  Children here are the *direct children* of §7.1: the nearest
    valued descendants.  A merge happens only when both direct children
    sit exactly one bit below the parent; a valued node strictly deeper
    covers only part of its half, so absorbing it would authorize
    prefixes the input did not (the forged-origin subprefix surface the
    whole exercise is meant to avoid).
    """
    for node in trie.postorder_nodes():
        if not node.has_value:
            continue
        left, right = node.left, node.right
        if (
            left is None
            or right is None
            or not left.has_value
            or not right.has_value
        ):
            continue
        assert node.value is not None
        min_child = min(left.value, right.value)  # type: ignore[type-var]
        if min_child > node.value:
            node.value = min_child
        if left.value <= node.value:  # type: ignore[operator]
            trie.unmark(left)
        if right.value <= node.value:  # type: ignore[operator]
            trie.unmark(right)


def compress_vrps(vrps: Iterable[Vrp]) -> list[Vrp]:
    """The ``compress_roas`` entry point: tuples in, fewer tuples out.

    The output authorizes exactly the same (prefix, origin) pairs as the
    input — see ``tests/test_compress.py`` for the property-based proof
    harness — and is sorted deterministically.

    Tries are built and compressed one (AS, family) group at a time, so
    peak memory is the tuple list plus a single AS's trie — the
    full-deployment dataset (≈777k tuples) stays comfortably within the
    footprint the paper reports for its own tool.
    """
    groups: dict[tuple[int, int], list[Vrp]] = {}
    for vrp in vrps:
        groups.setdefault((vrp.asn, vrp.prefix.family), []).append(vrp)

    output: list[Vrp] = []
    for (asn, family), group in groups.items():
        trie = PrefixTrie[int](family)
        for vrp in group:
            trie.update(
                vrp.prefix,
                lambda old, new=vrp.max_length: new if old is None else max(old, new),
            )
        compress_trie(trie)
        for prefix, max_length in trie.items():
            output.append(Vrp(prefix, max_length, asn))
    return sorted(output)


class CompressionStats:
    """Before/after sizes for reporting (§7.2 quotes both and the %)."""

    def __init__(self, before: int, after: int) -> None:
        self.before = before
        self.after = after

    @property
    def saved(self) -> int:
        return self.before - self.after

    @property
    def ratio(self) -> float:
        """Fraction of tuples eliminated, e.g. 0.159 for Table 1 row 2."""
        if self.before == 0:
            return 0.0
        return self.saved / self.before

    def __str__(self) -> str:
        return (
            f"{self.before} -> {self.after} tuples "
            f"({100 * self.ratio:.2f}% compression)"
        )


# ----------------------------------------------------------------------
# Extension: optimal lossless compression (ablation A2)
# ----------------------------------------------------------------------


def _optimal_for_trie(
    trie: PrefixTrie[int], asn: int, max_spread: int
) -> list[Vrp]:
    """Minimum tuple set authorizing exactly the trie's coverage.

    Works on the *expanded* authorization set: every (prefix, length)
    the input authorizes becomes a marked node; the task is then a
    minimum cover of the marked set by "full pyramids" (a pyramid
    rooted at p with maxLength m covers all subprefixes of p up to
    length m, and is usable only when that whole set is marked).

    Solved by dynamic programming over the trie.  Define

    * ``F(v)`` — the deepest m such that every subprefix of v up to m
      is marked (``F(v) = min(F(left), F(right))`` when both children
      are marked, else ``len(v)``); an emitted pyramid at v always uses
      m = F(v), since ancestor coverage is monotone in m.
    * ``cost(v, m)`` — fewest pyramids inside v's subtree covering all
      its marked nodes, given ancestors already cover lengths <= m.
      At each marked v the choice is emit/skip; emitting is forced when
      ``len(v) > m``.

    Expansion doubles per maxLength step, so inputs with a spread larger
    than ``max_spread`` are rejected rather than silently exploding.
    """
    family = trie.family
    expanded = PrefixTrie[bool](family)
    for prefix, max_length in trie.items():
        if max_length - prefix.length > max_spread:
            raise PrefixLengthError(
                f"optimal compression would expand {prefix}-{max_length}: "
                f"spread exceeds {max_spread}"
            )
        for length in range(prefix.length, max_length + 1):
            for subprefix in prefix.subprefixes(length):
                expanded.insert(subprefix, True)

    # F values, computed bottom-up (postorder).
    reach: dict[Prefix, int] = {}
    for node in expanded.postorder_nodes():
        if not node.has_value:
            continue
        left, right = node.left, node.right
        if (
            left is not None
            and right is not None
            and left.has_value
            and right.has_value
        ):
            reach[node.prefix] = min(reach[left.prefix], reach[right.prefix])
        else:
            reach[node.prefix] = node.prefix.length

    # cost(v, m) with memoization; m ranges over -1 and ancestor F
    # values, all within [-1, family width], so the table stays small.
    # emit(v, m) is True when the optimum emits a pyramid at v.
    cost_memo: dict[tuple[int, int], int] = {}
    emit_memo: dict[tuple[int, int], bool] = {}

    def cost(node, m: int) -> int:  # noqa: ANN001 - internal trie node
        key = (id(node), m)
        if key in cost_memo:
            return cost_memo[key]
        children = [c for c in (node.left, node.right) if c is not None]
        skip_cost: int | None = None
        if not node.has_value or node.prefix.length <= m:
            skip_cost = sum(cost(child, m) for child in children)
        emit_cost: int | None = None
        if node.has_value:
            covered_to = max(m, reach[node.prefix])
            emit_cost = 1 + sum(cost(child, covered_to) for child in children)
        if skip_cost is None:
            best, chose_emit = emit_cost, True  # type: ignore[assignment]
        elif emit_cost is None or skip_cost <= emit_cost:
            best, chose_emit = skip_cost, False
        else:
            best, chose_emit = emit_cost, True
        cost_memo[key] = best  # type: ignore[assignment]
        emit_memo[key] = chose_emit
        return best  # type: ignore[return-value]

    root = expanded.root
    cost(root, -1)

    # Reconstruct the chosen pyramids by replaying decisions.
    output: list[Vrp] = []
    stack: list[tuple[object, int]] = [(root, -1)]
    while stack:
        node, m = stack.pop()  # type: ignore[assignment]
        covered_to = m
        if emit_memo[(id(node), m)]:
            prefix = node.prefix  # type: ignore[union-attr]
            output.append(Vrp(prefix, reach[prefix], asn))
            covered_to = max(m, reach[prefix])
        for child in (node.left, node.right):  # type: ignore[union-attr]
            if child is not None:
                stack.append((child, covered_to))
    return output


def compress_vrps_optimal(
    vrps: Iterable[Vrp], *, max_spread: int = 12
) -> list[Vrp]:
    """Optimal lossless compression (extension; see module docstring).

    Raises:
        PrefixLengthError: if a tuple's maxLength spread exceeds
            ``max_spread`` (the expansion is exponential in the spread).
    """
    tries = build_tries(vrps)
    output: list[Vrp] = []
    for (asn, _family), trie in tries.items():
        output.extend(_optimal_for_trie(trie, asn, max_spread))
    return sorted(output)
