"""Operational recommendations (paper §8, now RFC 9319 practice).

The paper closes by recommending that RIR interfaces steer operators
toward minimal, maxLength-free ROAs, warning "expert users" who insist
on maxLength about forged-origin subprefix hijacks.  This module is
that advice as code: a linter that inspects each ROA against the BGP
table and emits findings with severities and concrete fixes —
including the suggested minimal replacement ROA, optionally
pre-compressed with Algorithm 1 so the operator pays no PDU penalty.

Finding codes:

``VULNERABLE_MAXLENGTH``
    The §4 problem: an entry authorizes unannounced space.
``OWN_ROUTE_INVALID``
    The operator's own announcement fails validation under their ROA —
    the §3 misconfiguration (de-aggregating past maxLength, or past an
    exact-length ROA).
``UNUSED_ENTRY``
    Nothing the entry authorizes is announced; it only adds attack
    surface (or is a deliberate AS0-style block).
``REDUNDANT_ENTRY``
    Another entry of the same ROA already authorizes everything this
    one does.
``WIDE_MAXLENGTH``
    maxLength more than 8 bits past the prefix: even if currently
    minimal, a single withdrawn route reopens a huge surface.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional

from ..netbase import RadixTree
from ..rpki.roa import Roa, RoaPrefix
from ..rpki.vrp import Vrp
from .compress import compress_vrps
from .minimal import OriginPair, build_origin_index, minimal_roa_for
from .vulnerability import announced_count_under

__all__ = [
    "Severity",
    "FindingCode",
    "Finding",
    "RoaReview",
    "lint_roa",
    "lint_roas",
]


class Severity(enum.IntEnum):
    """Ordered so max() over findings gives the headline severity."""

    INFO = 0
    WARNING = 1
    ERROR = 2


class FindingCode(str, enum.Enum):
    """Machine-readable identifiers for the §8 ROA-review findings."""

    VULNERABLE_MAXLENGTH = "vulnerable-maxlength"
    OWN_ROUTE_INVALID = "own-route-invalid"
    UNUSED_ENTRY = "unused-entry"
    REDUNDANT_ENTRY = "redundant-entry"
    WIDE_MAXLENGTH = "wide-maxlength"


@dataclass(frozen=True)
class Finding:
    """One problem (or note) about one ROA entry."""

    code: FindingCode
    severity: Severity
    entry: RoaPrefix
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.name}] {self.entry}: {self.message}"


@dataclass(frozen=True)
class RoaReview:
    """The lint result for one ROA.

    Attributes:
        roa: the reviewed ROA.
        findings: all findings, ordered by entry.
        suggested: the recommended replacement — the minimal ROA
            covering exactly the announced-and-authorized routes,
            compressed with Algorithm 1 (None when the ROA authorizes
            nothing announced, or is already exactly the suggestion).
    """

    roa: Roa
    findings: tuple[Finding, ...]
    suggested: Optional[Roa]

    @property
    def severity(self) -> Severity:
        if not self.findings:
            return Severity.INFO
        return max(finding.severity for finding in self.findings)

    @property
    def ok(self) -> bool:
        return all(f.severity < Severity.ERROR for f in self.findings)

    def render(self) -> str:
        lines = [f"{self.roa}"]
        if not self.findings:
            lines.append("  clean: minimal and fully announced")
        for finding in self.findings:
            lines.append(f"  {finding}")
        if self.suggested is not None:
            lines.append(f"  suggested replacement: {self.suggested}")
        return "\n".join(lines)


def _suggest(roa: Roa, index: dict[int, RadixTree[set[int]]]) -> Optional[Roa]:
    """The minimal replacement, compressed so it stays PDU-friendly."""
    minimal = minimal_roa_for(roa, index)
    if minimal is None:
        return None
    compressed = compress_vrps(minimal.vrps())
    suggested = Roa(
        roa.asn,
        [
            RoaPrefix(
                vrp.prefix,
                vrp.max_length if vrp.uses_max_length else None,
            )
            for vrp in compressed
        ],
    )
    if suggested == roa:
        return None
    return suggested


def lint_roa(
    roa: Roa,
    announced: Iterable[OriginPair] | dict[int, RadixTree[set[int]]],
    *,
    wide_maxlength_threshold: int = 8,
) -> RoaReview:
    """Review one ROA against the BGP table."""
    index = (
        announced
        if isinstance(announced, dict)
        else build_origin_index(announced)
    )
    findings: list[Finding] = []

    for entry in roa.prefixes:
        vrp = Vrp(entry.prefix, entry.effective_max_length, roa.asn)
        authorized = vrp.authorized_count()
        announced_here = announced_count_under(vrp, index)

        covered_by_other = any(
            other is not entry
            and other.prefix.covers(entry.prefix)
            and other.effective_max_length >= entry.effective_max_length
            for other in roa.prefixes
        )
        if covered_by_other:
            findings.append(
                Finding(
                    FindingCode.REDUNDANT_ENTRY,
                    Severity.WARNING,
                    entry,
                    "another entry of this ROA already authorizes it",
                )
            )
            continue

        if announced_here == 0:
            findings.append(
                Finding(
                    FindingCode.UNUSED_ENTRY,
                    Severity.WARNING,
                    entry,
                    f"AS{roa.asn} announces nothing this entry authorizes "
                    "(drop it, or keep it only as a deliberate block)",
                )
            )
        elif entry.uses_max_length and announced_here < authorized:
            gap = authorized - announced_here
            findings.append(
                Finding(
                    FindingCode.VULNERABLE_MAXLENGTH,
                    Severity.ERROR,
                    entry,
                    f"authorizes {gap} unannounced prefixes — each is a "
                    "forged-origin subprefix hijack target; enumerate the "
                    "announced prefixes instead",
                )
            )

        if (
            entry.effective_max_length - entry.prefix.length
            > wide_maxlength_threshold
        ):
            findings.append(
                Finding(
                    FindingCode.WIDE_MAXLENGTH,
                    Severity.WARNING,
                    entry,
                    f"maxLength {entry.effective_max_length} reaches "
                    f"{entry.effective_max_length - entry.prefix.length} bits "
                    "past the prefix; one withdrawn route reopens a large "
                    "attack surface",
                )
            )

        # The operator's own de-aggregation breaking under their ROA:
        # announced same-AS routes covered by this entry but longer
        # than its maxLength.
        tree = index.get(entry.prefix.family)
        if tree is not None:
            for announced_prefix, origins in tree.covered(entry.prefix):
                if (
                    roa.asn in origins
                    and announced_prefix.length > entry.effective_max_length
                    and not roa.authorizes(announced_prefix, roa.asn)
                ):
                    findings.append(
                        Finding(
                            FindingCode.OWN_ROUTE_INVALID,
                            Severity.ERROR,
                            entry,
                            f"your own announcement {announced_prefix} is "
                            "RPKI-invalid under this ROA (covered but longer "
                            "than maxLength)",
                        )
                    )

    suggested = None
    if any(f.severity >= Severity.WARNING for f in findings):
        suggested = _suggest(roa, index)
    return RoaReview(roa=roa, findings=tuple(findings), suggested=suggested)


def lint_roas(
    roas: Iterable[Roa], announced: Iterable[OriginPair]
) -> list[RoaReview]:
    """Review a whole RPKI's worth of ROAs against one BGP table."""
    index = build_origin_index(announced)
    return [lint_roa(roa, index) for roa in roas]
