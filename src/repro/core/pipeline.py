"""The local-cache pipeline: Figure 1 of the paper, end to end.

    RPKI repositories --> relying-party validation --> scan_roas
        --> (optional) compress_roas --> RTR cache --> routers

:class:`LocalCache` composes the pieces: it validates a repository (or
accepts pre-validated VRPs), optionally compresses the tuple list with
Algorithm 1, and serves the result to routers over RPKI-to-Router.
``compress_roas`` was designed as a drop-in for this exact seam —
"Because it runs on the local cache, our software requires no changes
to routers and conforms with today's RPKI architecture" (§7.1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from ..rpki import (
    Repository,
    ResourceCertificate,
    ValidationRun,
    Vrp,
    scan_roas,
)
from ..rtr.cache import RtrCacheServer
from ..serve.rtr_async import ThreadedRtrServer
from .compress import CompressionStats, compress_vrps

__all__ = ["LocalCache"]

RtrServer = Union[ThreadedRtrServer, RtrCacheServer]


class LocalCache:
    """An AS's trusted local cache (a general-purpose machine, per §6).

    Args:
        compress: when True, run ``compress_roas`` on every refresh
            before handing PDUs to routers.

    Use :meth:`refresh_from_repository` (full crypto path) or
    :meth:`refresh_from_vrps` (pre-validated tuples), then either read
    :attr:`pdus` directly or :meth:`serve` them over RTR.
    """

    def __init__(self, *, compress: bool = False) -> None:
        self.compress = compress
        self._pdus: list[Vrp] = []
        self._raw_count = 0
        self._last_run: Optional[ValidationRun] = None
        self._server: Optional[RtrServer] = None

    # ------------------------------------------------------------------
    # Refresh
    # ------------------------------------------------------------------

    def refresh_from_repository(
        self,
        repository: Repository,
        trust_anchors: list[ResourceCertificate],
        *,
        now: int = 0,
    ) -> ValidationRun:
        """Validate the repository and rebuild the PDU list."""
        run = scan_roas(repository, trust_anchors, now=now)
        self._last_run = run
        self._install(run.vrps)
        return run

    def refresh_from_vrps(self, vrps: Iterable[Vrp]) -> None:
        """Skip crypto: install an externally validated tuple list."""
        self._install(list(vrps))

    def _install(self, vrps: list[Vrp]) -> None:
        self._raw_count = len(vrps)
        self._pdus = compress_vrps(vrps) if self.compress else sorted(vrps)
        if self._server is not None:
            self._server.update(self._pdus)

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------

    @property
    def pdus(self) -> list[Vrp]:
        """The (possibly compressed) tuples routers will receive."""
        return list(self._pdus)

    @property
    def last_validation(self) -> Optional[ValidationRun]:
        return self._last_run

    def compression_stats(self) -> CompressionStats:
        """Input vs output tuple counts for the latest refresh."""
        return CompressionStats(self._raw_count, len(self._pdus))

    # ------------------------------------------------------------------
    # RTR serving
    # ------------------------------------------------------------------

    def serve(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backend: str = "async",
    ) -> RtrServer:
        """Start (or return) the RTR server publishing this cache's PDUs.

        ``backend`` selects the serving tier: ``"async"`` (default) is
        the high-fanout :class:`repro.serve.ThreadedRtrServer` —
        asyncio sessions behind a synchronous facade, with per-serial
        pre-encoded frames; ``"thread"`` keeps the legacy
        thread-per-connection :class:`RtrCacheServer`.  Both speak the
        same RFC 6810 wire protocol.
        """
        backends = {"async": ThreadedRtrServer, "thread": RtrCacheServer}
        server_type = backends.get(backend)
        if server_type is None:
            raise ValueError(f"unknown RTR backend {backend!r}")
        if self._server is None:
            # Assign only after a successful start: a bind failure must
            # not cache a dead server that poisons every later serve().
            server = server_type(self._pdus, host=host, port=port)
            server.start()
            self._server = server
        elif not isinstance(self._server, server_type):
            raise ValueError(
                f"RTR server already running with backend "
                f"{type(self._server).__name__}; close() it before "
                f"switching to {backend!r}"
            )
        return self._server

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
            self._server = None

    def __enter__(self) -> "LocalCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
