"""The paper's contribution: compression, minimality, vulnerability.

* :mod:`repro.core.compress` — Algorithm 1 (``compress_roas``) plus an
  optimal-compression extension.
* :mod:`repro.core.minimal` — minimal-ROA conversion (§6/§7 scenarios).
* :mod:`repro.core.vulnerability` — forged-origin subprefix hijack
  classification (§4, §6).
* :mod:`repro.core.bounds` — maximally-permissive lower bound (§6).
* :mod:`repro.core.pipeline` — the Figure 1 local-cache pipeline.
"""

from ..rpki.vrp import Vrp
from .bounds import lower_bound_pdu_count, maximally_permissive_vrps
from .compress import (
    CompressionStats,
    build_tries,
    compress_trie,
    compress_vrps,
    compress_vrps_optimal,
)
from .minimal import (
    OriginPair,
    additional_prefix_count,
    build_origin_index,
    minimal_roa_for,
    to_minimal_vrps,
)
from .pipeline import LocalCache
from .recommend import (
    Finding,
    FindingCode,
    RoaReview,
    Severity,
    lint_roa,
    lint_roas,
)
from .vulnerability import (
    VulnerabilityReport,
    analyze_vrps,
    announced_count_under,
    hijackable_prefixes,
    is_minimal,
    is_vulnerable,
)

__all__ = [
    "CompressionStats",
    "Finding",
    "FindingCode",
    "LocalCache",
    "RoaReview",
    "Severity",
    "lint_roa",
    "lint_roas",
    "OriginPair",
    "Vrp",
    "VulnerabilityReport",
    "additional_prefix_count",
    "analyze_vrps",
    "announced_count_under",
    "build_origin_index",
    "build_tries",
    "compress_trie",
    "compress_vrps",
    "compress_vrps_optimal",
    "hijackable_prefixes",
    "is_minimal",
    "is_vulnerable",
    "lower_bound_pdu_count",
    "maximally_permissive_vrps",
    "minimal_roa_for",
    "to_minimal_vrps",
]
