"""Maximally-permissive ROAs: the compression lower bound (paper §6).

To bound how much PDU compression maxLength could *ever* deliver, the
paper imagines every announced (prefix, origin) pair covered by a
maximally-permissive ROA — maxLength /32 for IPv4, /128 for IPv6.  Such
ROAs are wildly vulnerable to forged-origin subprefix hijacks; they are
useful only as an upper bound on compression (equivalently, a lower
bound on the number of PDUs routers must process).

Under maximal permissiveness, an announced pair (q, AS) needs no PDU of
its own whenever the same AS also announces a covering prefix p — the
(p, /32, AS) PDU already authorizes q.  The bound therefore counts, per
origin AS, the announced prefixes with no announced covering prefix at
the same AS.  The paper finds 729,371 of 776,945 pairs survive: maximum
compression just 6.2%, "because most ASes do not send BGP announcements
for subprefixes of their prefixes".
"""

from __future__ import annotations

from typing import Iterable

from ..netbase import Prefix
from ..rpki.vrp import Vrp
from .minimal import OriginPair

__all__ = [
    "maximally_permissive_vrps",
    "lower_bound_pdu_count",
]


def maximally_permissive_vrps(announced: Iterable[OriginPair]) -> list[Vrp]:
    """The smallest maximally-permissive VRP set covering ``announced``.

    One VRP per announced (prefix, origin) pair whose origin announces
    no covering prefix, with maxLength pinned to the family width.
    """
    # Group by origin AS; within one AS, sorting prefixes puts ancestors
    # immediately before descendants, so a single scan per family finds
    # covered entries.
    by_origin: dict[int, list[Prefix]] = {}
    for prefix, origin in announced:
        by_origin.setdefault(origin, []).append(prefix)

    output: list[Vrp] = []
    for origin, prefixes in by_origin.items():
        for family in (4, 6):
            family_prefixes = sorted(
                {p for p in prefixes if p.family == family}
            )
            # Sorted order puts ancestors before descendants, and any
            # kept prefix covering the current one must be the most
            # recently kept (kept ranges are disjoint or nested, and the
            # scan never leaves a range before exhausting it), so one
            # comparison per prefix suffices.
            last_kept: Prefix | None = None
            for prefix in family_prefixes:
                if last_kept is not None and last_kept.covers(prefix):
                    continue
                output.append(Vrp(prefix, prefix.max_family_length, origin))
                last_kept = prefix
    return sorted(output)


def lower_bound_pdu_count(announced: Iterable[OriginPair]) -> int:
    """Table 1's last row: PDUs under maximally-permissive ROAs."""
    return len(maximally_permissive_vrps(announced))
