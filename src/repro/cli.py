"""``repro-roa`` — the command-line face of the library.

Subcommands mirror the paper's workflow:

* ``compress``  — compress a VRP CSV (the ``compress_roas`` drop-in).
* ``analyze``   — the §6 vulnerability/benefit measurements for a VRP
  CSV plus a BGP table.
* ``minimal``   — convert a VRP CSV to minimal, maxLength-free VRPs.
* ``generate``  — synthesize a dated snapshot to CSV + RIB files.
* ``table1``    — print Table 1 for a snapshot (from files or synthetic).
* ``figure3``   — print both Figure 3 panels from the weekly series.
* ``lint``      — review ROAs against the BGP table (§8 advice as code).
* ``rtr-serve`` — serve a VRP CSV to routers over RPKI-to-Router
  (legacy thread-per-connection server).
* ``serve``     — the full serving tier: async high-fanout RTR
  distribution plus the origin-validation HTTP/JSON query service.

Examples::

    repro-roa generate --scale 0.05 --out-dir /tmp/snap
    repro-roa analyze /tmp/snap/vrps.csv /tmp/snap/rib.txt
    repro-roa compress /tmp/snap/vrps.csv -o /tmp/snap/compressed.csv
    repro-roa table1 --scale 0.05
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis import (
    compute_figure3a,
    compute_figure3b,
    compute_table1,
    measure_section6,
    render_panel,
)
from .core.compress import CompressionStats, compress_vrps
from .core.minimal import to_minimal_vrps
from .core.recommend import Severity, lint_roas
from .rpki.roa import Roa, RoaPrefix
from .data.internet import GeneratorConfig, generate_snapshot
from .data.routeviews import read_origin_pairs, write_origin_pairs
from .data.rpki_archive import read_vrp_csv, write_vrp_csv
from .data.snapshots import SeriesConfig, generate_weekly_series

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-roa",
        description="MaxLength-considered-harmful reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser(
        "compress", help="losslessly compress a VRP CSV (Algorithm 1)"
    )
    compress.add_argument("vrps", help="input VRP CSV")
    compress.add_argument("-o", "--output", help="output CSV (default stdout)")

    minimal = sub.add_parser(
        "minimal", help="convert VRPs to the minimal, maxLength-free set"
    )
    minimal.add_argument("vrps", help="input VRP CSV")
    minimal.add_argument("rib", help="BGP table (prefix|origin lines)")
    minimal.add_argument("-o", "--output", help="output CSV (default stdout)")

    analyze = sub.add_parser("analyze", help="run the §6 measurements")
    analyze.add_argument("vrps", help="input VRP CSV")
    analyze.add_argument("rib", help="BGP table (prefix|origin lines)")

    generate = sub.add_parser("generate", help="synthesize a snapshot")
    generate.add_argument("--scale", type=float, default=0.05,
                          help="fraction of the 2017 Internet (default 0.05)")
    generate.add_argument("--seed", type=int, default=20170601)
    generate.add_argument("--out-dir", required=True)

    table1 = sub.add_parser("table1", help="print Table 1")
    table1.add_argument("--scale", type=float, default=0.05)
    table1.add_argument("--seed", type=int, default=20170601)
    table1.add_argument("--vrps", help="VRP CSV (else synthetic)")
    table1.add_argument("--rib", help="BGP table (with --vrps)")

    figure3 = sub.add_parser("figure3", help="print Figure 3 (both panels)")
    figure3.add_argument("--scale", type=float, default=0.02)
    figure3.add_argument("--seed", type=int, default=20170601)

    lint = sub.add_parser(
        "lint", help="review VRPs-as-ROAs against the BGP table (§8)"
    )
    lint.add_argument("vrps", help="input VRP CSV")
    lint.add_argument("rib", help="BGP table (prefix|origin lines)")
    lint.add_argument("--errors-only", action="store_true",
                      help="print only ROAs with ERROR findings")

    rtr_serve = sub.add_parser(
        "rtr-serve", help="serve VRPs over RTR (legacy threaded server)"
    )
    rtr_serve.add_argument("vrps", help="input VRP CSV")
    rtr_serve.add_argument("--host", default="127.0.0.1")
    rtr_serve.add_argument("--port", type=int, default=8282)
    rtr_serve.add_argument("--compress", action="store_true",
                           help="compress before serving")

    serve = sub.add_parser(
        "serve",
        help="async RTR distribution + origin-validation query service",
    )
    serve.add_argument("vrps", help="input VRP CSV")
    serve.add_argument("--rtr-host", default="127.0.0.1")
    serve.add_argument("--rtr-port", type=int, default=8282)
    serve.add_argument("--http-host", default="127.0.0.1")
    serve.add_argument("--http-port", type=int, default=8080)
    serve.add_argument("--compress", action="store_true",
                       help="compress before serving")
    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    vrps = list(read_vrp_csv(args.vrps))
    compressed = compress_vrps(vrps)
    stats = CompressionStats(len(vrps), len(compressed))
    if args.output:
        write_vrp_csv(compressed, args.output)
    else:
        write_vrp_csv(compressed, sys.stdout)
    print(f"compress_roas: {stats}", file=sys.stderr)
    return 0


def _cmd_minimal(args: argparse.Namespace) -> int:
    vrps = list(read_vrp_csv(args.vrps))
    announced = list(read_origin_pairs(args.rib))
    minimal = to_minimal_vrps(vrps, announced)
    if args.output:
        write_vrp_csv(minimal, args.output)
    else:
        write_vrp_csv(minimal, sys.stdout)
    print(
        f"minimal ROAs: {len(vrps)} tuples -> {len(minimal)} "
        f"announced-and-valid prefixes",
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    vrps = list(read_vrp_csv(args.vrps))
    announced = list(read_origin_pairs(args.rib))
    measurements = measure_section6(vrps, announced)
    for line in measurements.summary_lines():
        print(line)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    snapshot = generate_snapshot(
        GeneratorConfig(scale=args.scale, seed=args.seed)
    )
    vrp_path = out_dir / "vrps.csv"
    rib_path = out_dir / "rib.txt"
    write_vrp_csv(snapshot.vrps, vrp_path)
    write_origin_pairs(snapshot.announced, rib_path)
    print(f"wrote {vrp_path} ({len(snapshot.vrps)} VRPs)")
    print(f"wrote {rib_path} ({len(snapshot.announced)} announcements)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    if args.vrps:
        if not args.rib:
            print("--rib is required with --vrps", file=sys.stderr)
            return 2
        vrps = list(read_vrp_csv(args.vrps))
        announced = list(read_origin_pairs(args.rib))
    else:
        snapshot = generate_snapshot(
            GeneratorConfig(scale=args.scale, seed=args.seed)
        )
        vrps = snapshot.vrps
        announced = snapshot.announced
    print(compute_table1(vrps, announced).render())
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    series = generate_weekly_series(
        SeriesConfig(base=GeneratorConfig(scale=args.scale, seed=args.seed))
    )
    print(render_panel(compute_figure3a(series)))
    print()
    print(render_panel(compute_figure3b(series)))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    announced = list(read_origin_pairs(args.rib))
    # Group VRP rows into per-AS ROAs: the CSV does not preserve ROA
    # boundaries, so each AS's tuples are reviewed as one ROA.
    by_asn: dict[int, list] = {}
    for vrp in read_vrp_csv(args.vrps):
        max_length = vrp.max_length if vrp.uses_max_length else None
        by_asn.setdefault(vrp.asn, []).append(
            RoaPrefix(vrp.prefix, max_length)
        )
    roas = [Roa(asn, entries) for asn, entries in sorted(by_asn.items())]
    reviews = lint_roas(roas, announced)
    errors = 0
    for review in reviews:
        if review.severity is Severity.ERROR:
            errors += 1
        if args.errors_only and review.severity is not Severity.ERROR:
            continue
        print(review.render())
        print()
    print(
        f"{len(reviews)} ROAs reviewed, {errors} with vulnerabilities",
        file=sys.stderr,
    )
    return 0 if errors == 0 else 1


def _cmd_rtr_serve(args: argparse.Namespace) -> int:
    # Imported here so the CLI works without loading socket machinery
    # for the pure-analysis commands.
    from .core.pipeline import LocalCache

    cache = LocalCache(compress=args.compress)
    cache.refresh_from_vrps(read_vrp_csv(args.vrps))
    server = cache.serve(host=args.host, port=args.port, backend="thread")
    print(
        f"serving {len(cache.pdus)} PDUs on {server.host}:{server.port} "
        f"(compress={'on' if args.compress else 'off'}); Ctrl-C to stop"
    )
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        return 0
    finally:
        cache.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the pure-analysis commands stay socket-free.
    import asyncio

    from .serve import (
        AsyncRtrServer,
        QueryHttpServer,
        QueryService,
        ServeMetrics,
    )

    vrps = list(read_vrp_csv(args.vrps))
    if args.compress:
        vrps = compress_vrps(vrps)

    async def run() -> None:
        metrics = ServeMetrics()
        rtr = AsyncRtrServer(
            vrps, host=args.rtr_host, port=args.rtr_port, metrics=metrics)
        await rtr.start()
        service = QueryService(vrps, metrics=metrics)
        service.serial = rtr.state.serial
        http = QueryHttpServer(
            service, host=args.http_host, port=args.http_port, metrics=metrics)
        await http.start()
        print(
            f"RTR: {len(vrps)} VRPs at serial {rtr.state.serial} on "
            f"{rtr.host}:{rtr.port} (compress={'on' if args.compress else 'off'})"
        )
        print(
            f"HTTP: GET http://{http.host}:{http.port}/validity"
            f"?asn=…&prefix=… (also /metrics, /status); Ctrl-C to stop"
        )
        await asyncio.Event().wait()  # serve until interrupted

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


_COMMANDS = {
    "compress": _cmd_compress,
    "minimal": _cmd_minimal,
    "analyze": _cmd_analyze,
    "generate": _cmd_generate,
    "lint": _cmd_lint,
    "table1": _cmd_table1,
    "figure3": _cmd_figure3,
    "rtr-serve": _cmd_rtr_serve,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
