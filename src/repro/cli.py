"""``repro-roa`` — the command-line face of the library.

Subcommands mirror the paper's workflow:

* ``compress``  — compress a VRP CSV (the ``compress_roas`` drop-in).
* ``analyze``   — the §6 vulnerability/benefit measurements for a VRP
  CSV plus a BGP table.
* ``minimal``   — convert a VRP CSV to minimal, maxLength-free VRPs.
* ``generate``  — synthesize a dated snapshot to CSV + RIB files.
* ``table1``    — print Table 1 for a snapshot (from files or synthetic).
* ``figure3``   — print both Figure 3 panels from the weekly series.
* ``roa-lint``  — review ROAs against the BGP table (§8 advice as code).
* ``lint``      — the :mod:`repro.lint` invariant linter over the
  library's own sources (RNG discipline, import layering, async
  safety, docstring policy); gates CI.
* ``rtr-serve`` — serve a VRP CSV to routers over RPKI-to-Router
  (legacy thread-per-connection server).
* ``serve``     — the full serving tier: async high-fanout RTR
  distribution plus the origin-validation HTTP/JSON query service;
  ``--jobs --jobs-store DIR`` upgrades it to the always-on experiment
  platform (:mod:`repro.jobs`): ``POST /experiments`` enqueues jobs a
  background scheduler executes durably.
* ``experiment`` — run an attack-effectiveness experiment grid on the
  :mod:`repro.exper` engine, from flags or a JSON spec file; with
  ``--sink`` the run records durably (and ``--resume`` continues an
  interrupted recording to a byte-identical result).
* ``results``   — inspect durable run records: ``show`` re-aggregates
  a run file, ``merge`` unions shard-partial runs of one spec.
* ``shard-worker`` — execute one shard of a grid into its own run
  file, or (``--listen``) serve shards over HTTP to a
  ``--shard-hosts`` coordinator (see :mod:`repro.exper.sharded`).
* ``chaos``     — seeded fault-injection drills (:mod:`repro.faults`):
  a sharded experiment under worker crashes and sink IO errors whose
  output is byte-identical to a fault-free serial run, or the HTTP
  tier under connection faults plus a graceful-drain health-flip
  check; ``--emit-plan`` prints the deterministic fault plan.
* ``jobs``      — the experiment platform's client and offline drain
  (:mod:`repro.jobs`): ``submit``/``list``/``show``/``cancel``/
  ``diff`` against either a local ``--store`` directory or a running
  ``serve --jobs`` instance via ``--server``, and ``run`` to drain a
  store's pending jobs in the foreground (also the crash-recovery
  path — interrupted jobs resume to byte-identical runs).

Examples::

    repro-roa generate --scale 0.05 --out-dir /tmp/snap
    repro-roa analyze /tmp/snap/vrps.csv /tmp/snap/rib.txt
    repro-roa compress /tmp/snap/vrps.csv -o /tmp/snap/compressed.csv
    repro-roa table1 --scale 0.05
    repro-roa experiment --kinds forged-origin-subprefix \\
        --policies minimal,maxlength-loose --fractions 0,0.5,1 \\
        --trials 50 --executor process
    repro-roa experiment --trials 50 --sink run.jsonl --resume
    repro-roa experiment --trials 50 --executor sharded --shards 4 \\
        --shard-store /tmp/shards --sink run.jsonl
    repro-roa shard-worker --spec spec.json --shard 0 --shards 4 \\
        --out shard0.jsonl
    repro-roa results show run.jsonl
    repro-roa results merge merged.jsonl shard0.jsonl shard1.jsonl
    repro-roa chaos --seed 7 --trials 12 --shards 3 --json
    repro-roa chaos --drill serve --seed 7
    repro-roa jobs submit --store /tmp/jobs --trials 20
    repro-roa jobs run --store /tmp/jobs
    repro-roa jobs diff --store /tmp/jobs job-000001 job-000002
"""

from __future__ import annotations

import argparse
import random
import sys
from pathlib import Path
from typing import Optional, Sequence

from .analysis import (
    compute_figure3a,
    compute_figure3b,
    compute_table1,
    measure_section6,
    render_panel,
)
from .core.compress import CompressionStats, compress_vrps
from .core.minimal import to_minimal_vrps
from .core.recommend import Severity, lint_roas
from .rpki.roa import Roa, RoaPrefix
from .data.internet import GeneratorConfig, generate_snapshot
from .data.routeviews import read_origin_pairs, write_origin_pairs
from .data.rpki_archive import read_vrp_csv, write_vrp_csv
from .data.snapshots import SeriesConfig, generate_weekly_series

__all__ = ["main", "build_parser"]


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """The experiment-grid flags `_experiment_spec_from_args` reads.

    Shared by ``experiment`` and ``jobs submit`` so a spec submitted
    to the platform is expressed exactly like a direct run.
    """
    parser.add_argument(
        "--spec", help="JSON ExperimentSpec file (overrides grid flags)"
    )
    parser.add_argument(
        "--kinds", default="forged-origin-subprefix,forged-origin",
        help="comma-separated attack kinds (default: the §4/§5 pair)",
    )
    parser.add_argument(
        "--policies", default="minimal,maxlength-loose",
        help="comma-separated ROA policies: minimal, maxlength-loose, "
             "maxlength-<N>, none, or <base>@<coverage>",
    )
    parser.add_argument("--attackers", type=int, default=1,
                        help="simultaneous attackers per trial")
    parser.add_argument("--prepend", type=int, default=0,
                        help="AS-path prepend count on the attack")
    parser.add_argument(
        "--fractions", default="all",
        help="comma-separated validating fractions in [0,1]; "
             "'all' = universal validation (default)",
    )
    parser.add_argument("--trials", type=int, default=20)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--victim-prefix", default="168.122.0.0/16")
    parser.add_argument("--attack-prefix",
                        help="default: victim prefix + 8 bits")
    parser.add_argument("--sampler", choices=("stubs", "any"),
                        default="stubs")
    parser.add_argument(
        "--executor",
        choices=("serial", "process", "sharded", "auto"),
        help="execution strategy: serial, process (multiprocessing "
             "pool), sharded (crash-retried shard workers; see "
             "--shards/--shard-hosts), or auto (serial on one core, "
             "process otherwise); default: the spec's executor "
             "(serial unless the spec file says otherwise)",
    )
    parser.add_argument(
        "--engine", choices=("object", "array"),
        help="propagation backend: object (default) or array (the "
             "flat-array engine for CAIDA-scale topologies); "
             "overrides the spec file's engine when given",
    )
    parser.add_argument(
        "--stopping", choices=("none", "ci"),
        help="adaptive early stopping: stop a fraction once every "
             "cell's bootstrap CI is narrower than --stop-ci-width "
             "(default none; overrides the spec file's setting)",
    )
    parser.add_argument("--stop-ci-width", type=float,
                        help="CI-width threshold (default 0.05; "
                             "implies --stopping ci)")
    parser.add_argument("--stop-min-trials", type=int,
                        help="trials before the first stopping check "
                             "(default 16; implies --stopping ci)")
    parser.add_argument("--stop-check-every", type=int,
                        help="trials between stopping checks "
                             "(default 8; implies --stopping ci)")


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro-roa`` argument parser (one subparser per command)."""
    parser = argparse.ArgumentParser(
        prog="repro-roa",
        description="MaxLength-considered-harmful reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compress = sub.add_parser(
        "compress", help="losslessly compress a VRP CSV (Algorithm 1)"
    )
    compress.add_argument("vrps", help="input VRP CSV")
    compress.add_argument("-o", "--output", help="output CSV (default stdout)")

    minimal = sub.add_parser(
        "minimal", help="convert VRPs to the minimal, maxLength-free set"
    )
    minimal.add_argument("vrps", help="input VRP CSV")
    minimal.add_argument("rib", help="BGP table (prefix|origin lines)")
    minimal.add_argument("-o", "--output", help="output CSV (default stdout)")

    analyze = sub.add_parser("analyze", help="run the §6 measurements")
    analyze.add_argument("vrps", help="input VRP CSV")
    analyze.add_argument("rib", help="BGP table (prefix|origin lines)")

    generate = sub.add_parser("generate", help="synthesize a snapshot")
    generate.add_argument("--scale", type=float, default=0.05,
                          help="fraction of the 2017 Internet (default 0.05)")
    generate.add_argument("--seed", type=int, default=20170601)
    generate.add_argument("--out-dir", required=True)

    table1 = sub.add_parser("table1", help="print Table 1")
    table1.add_argument("--scale", type=float, default=0.05)
    table1.add_argument("--seed", type=int, default=20170601)
    table1.add_argument("--vrps", help="VRP CSV (else synthetic)")
    table1.add_argument("--rib", help="BGP table (with --vrps)")

    figure3 = sub.add_parser("figure3", help="print Figure 3 (both panels)")
    figure3.add_argument("--scale", type=float, default=0.02)
    figure3.add_argument("--seed", type=int, default=20170601)

    roa_lint = sub.add_parser(
        "roa-lint", help="review VRPs-as-ROAs against the BGP table (§8)"
    )
    roa_lint.add_argument("vrps", help="input VRP CSV")
    roa_lint.add_argument("rib", help="BGP table (prefix|origin lines)")
    roa_lint.add_argument("--errors-only", action="store_true",
                          help="print only ROAs with ERROR findings")

    lint = sub.add_parser(
        "lint",
        help="run the repro.lint invariant linter over python sources",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: the installed "
             "repro package)",
    )
    lint.add_argument(
        "--rule", action="append", metavar="RULE",
        help="run only this rule id (repeatable, e.g. --rule RNG001)",
    )
    lint.add_argument("--json", action="store_true",
                      help="emit the findings as JSON (schema 1)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    rtr_serve = sub.add_parser(
        "rtr-serve", help="serve VRPs over RTR (legacy threaded server)"
    )
    rtr_serve.add_argument("vrps", help="input VRP CSV")
    rtr_serve.add_argument("--host", default="127.0.0.1")
    rtr_serve.add_argument("--port", type=int, default=8282)
    rtr_serve.add_argument("--compress", action="store_true",
                           help="compress before serving")

    serve = sub.add_parser(
        "serve",
        help="async RTR distribution + origin-validation query service",
    )
    serve.add_argument("vrps", help="input VRP CSV")
    serve.add_argument("--rtr-host", default="127.0.0.1")
    serve.add_argument("--rtr-port", type=int, default=8282)
    serve.add_argument("--http-host", default="127.0.0.1")
    serve.add_argument("--http-port", type=int, default=8080)
    serve.add_argument("--compress", action="store_true",
                       help="compress before serving")
    serve.add_argument(
        "--results",
        help="directory of recorded runs (a ResultsStore) to serve "
             "on the /experiments endpoints",
    )
    serve.add_argument(
        "--metrics-interval", type=float, metavar="N",
        help="log a metrics snapshot to stderr every N seconds",
    )
    serve.add_argument(
        "--max-clients", type=int, metavar="N",
        help="load shedding: refuse connections beyond N concurrent "
             "clients per server (RTR closes immediately, HTTP "
             "answers 503; default: unlimited)",
    )
    serve.add_argument(
        "--client-deadline", type=float, metavar="SECS",
        help="evict an RTR client whose socket cannot absorb a write "
             "within SECS (slow-consumer protection; default: wait "
             "forever)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, metavar="SECS",
        help="on SIGTERM, wait up to SECS for in-flight HTTP "
             "requests to finish before closing (default 10)",
    )
    serve.add_argument(
        "--jobs", action="store_true",
        help="run the experiment platform: a durable job queue and "
             "scheduler behind POST /experiments and the /jobs "
             "endpoints (requires --jobs-store)",
    )
    serve.add_argument(
        "--jobs-store", metavar="DIR",
        help="platform directory (queue.jsonl + runs/) backing "
             "--jobs; restarting with the same DIR resumes jobs a "
             "crash left mid-flight",
    )

    experiment = sub.add_parser(
        "experiment",
        help="run an attack-effectiveness grid on the repro.exper engine",
    )
    _add_spec_arguments(experiment)
    experiment.add_argument("--topology",
                            help="CAIDA relationship file (else synthetic)")
    experiment.add_argument("--ases", type=int, default=400,
                            help="synthetic topology size")
    experiment.add_argument("--topology-seed", type=int, default=11)
    experiment.add_argument("--workers", type=int,
                            help="process-executor pool size (also the "
                                 "sharded executor's in-flight window)")
    experiment.add_argument(
        "--shards", type=int, metavar="N",
        help="sharded executor: split the grid into N shards "
             "(default: the worker count)",
    )
    experiment.add_argument(
        "--shard-store", metavar="DIR",
        help="sharded executor: keep per-shard run files under DIR "
             "(resumable and mergeable with repro-roa results merge; "
             "default: a temporary directory, removed afterwards)",
    )
    experiment.add_argument(
        "--shard-hosts", metavar="HOSTS",
        help="sharded executor: dispatch shards to these comma-"
             "separated repro-roa shard-worker hosts (host:port) "
             "instead of local processes",
    )
    experiment.add_argument(
        "--shard-retries", type=int, default=2, metavar="N",
        help="sharded executor: retries per shard before the run "
             "fails (default 2)",
    )
    experiment.add_argument(
        "--shard-timeout", type=float, default=120.0, metavar="SECS",
        help="sharded executor: reassign a shard after SECS without "
             "progress (default 120)",
    )
    experiment.add_argument(
        "--sink",
        help="record every trial durably into this JSONL run file "
             "(appendable, crash-safe; see repro-roa results)",
    )
    experiment.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted recording in --sink: completed "
             "trials replay instead of re-running, and the final "
             "result is byte-identical to an uninterrupted run",
    )
    experiment.add_argument(
        "--progress", action="store_true",
        help="print heartbeat lines (trials/sec, ETA, per-cell "
             "completion) to stderr while the grid runs",
    )
    experiment.add_argument(
        "--progress-interval", type=float, default=2.0, metavar="N",
        help="seconds between --progress heartbeats (default 2)",
    )
    experiment.add_argument(
        "--trace", metavar="PATH",
        help="record span traces and write them to PATH as Chrome "
             "trace JSON (open in Perfetto / chrome://tracing)",
    )
    experiment.add_argument("--emit-spec", action="store_true",
                            help="print the spec as JSON and exit")
    experiment.add_argument("--json", action="store_true",
                            help="print the aggregated result as JSON")

    results = sub.add_parser(
        "results",
        help="inspect / combine durable experiment run records",
    )
    results_sub = results.add_subparsers(dest="results_command",
                                         required=True)
    show = results_sub.add_parser(
        "show", help="re-aggregate a recorded run and print its grid"
    )
    show.add_argument("run", help="run file (JSONL) to aggregate")
    show.add_argument("--json", action="store_true",
                      help="print the aggregated result as JSON")
    merge = results_sub.add_parser(
        "merge",
        help="union shard-partial runs of one spec into a single run",
    )
    merge.add_argument("output", help="merged run file to write")
    merge.add_argument("inputs", nargs="+", help="input run files")

    shard_worker = sub.add_parser(
        "shard-worker",
        help="execute one shard of an experiment grid (or serve "
             "shards over HTTP for --shard-hosts coordinators)",
    )
    shard_worker.add_argument(
        "--spec", help="JSON ExperimentSpec file (one-shot mode)"
    )
    shard_worker.add_argument(
        "--shard", type=int, metavar="K",
        help="one-shot mode: run shard K of the --shards plan",
    )
    shard_worker.add_argument(
        "--shards", type=int, metavar="N",
        help="one-shot mode: total shard count of the plan",
    )
    shard_worker.add_argument(
        "--out", metavar="PATH",
        help="one-shot mode: stream the shard's records into this "
             "JSONL run file (re-running resumes it)",
    )
    shard_worker.add_argument(
        "--listen", action="store_true",
        help="serve shards over HTTP instead (POST /shards dispatch, "
             "GET /shards/<i> heartbeat, GET /shards/<i>/records)",
    )
    shard_worker.add_argument("--host", default="127.0.0.1")
    shard_worker.add_argument("--port", type=int, default=0)
    shard_worker.add_argument("--topology",
                              help="CAIDA relationship file (else "
                                   "synthetic)")
    shard_worker.add_argument("--ases", type=int, default=400,
                              help="synthetic topology size")
    shard_worker.add_argument("--topology-seed", type=int, default=11)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection drills against the stack",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault-plan seed (same seed, same faults)")
    chaos.add_argument(
        "--plan", metavar="FILE",
        help="JSON FaultPlan file to install (instead of generating "
             "one from --seed)",
    )
    chaos.add_argument(
        "--emit-plan", action="store_true",
        help="print the fault plan as JSON and exit (no drill)",
    )
    chaos.add_argument(
        "--drill", choices=("experiment", "serve"), default="experiment",
        help="experiment: sharded grid run under worker faults, "
             "result identical to a fault-free serial run; serve: "
             "HTTP tier under request faults plus a graceful-drain "
             "health-flip check (default experiment)",
    )
    chaos.add_argument("--rules", type=int, default=2,
                       help="rules per generated plan (default 2)")
    chaos.add_argument("--trials", type=int, default=12)
    chaos.add_argument("--spec-seed", type=int, default=0,
                       help="experiment grid seed (default 0, matching "
                            "repro-roa experiment)")
    chaos.add_argument("--ases", type=int, default=150,
                       help="synthetic topology size")
    chaos.add_argument("--topology-seed", type=int, default=11)
    chaos.add_argument("--shards", type=int, default=3)
    chaos.add_argument(
        "--shard-store", metavar="DIR",
        help="keep per-shard run files under DIR (default: temporary)",
    )
    chaos.add_argument(
        "--sink", metavar="PATH",
        help="record the drilled run into this JSONL file — "
             "byte-identical to a fault-free serial recording",
    )
    chaos.add_argument("--json", action="store_true",
                       help="print the drill result as JSON")

    jobs = sub.add_parser(
        "jobs",
        help="the durable experiment platform: submit, inspect, "
             "execute, and diff queued experiment jobs",
    )
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    def _target_arguments(
        parser: argparse.ArgumentParser, server: bool = True
    ) -> None:
        parser.add_argument(
            "--store", metavar="DIR",
            help="platform directory (queue.jsonl + runs/) for "
                 "direct local access",
        )
        if server:
            parser.add_argument(
                "--server", metavar="URL",
                help="platform HTTP endpoint "
                     "(a repro-roa serve --jobs address)",
            )

    submit = jobs_sub.add_parser(
        "submit", help="enqueue an experiment job (flags as in "
                       "repro-roa experiment)",
    )
    _target_arguments(submit)
    _add_spec_arguments(submit)
    submit.add_argument("--run", metavar="ID",
                        help="results run id (default: the job id)")
    submit.add_argument("--ases", type=int, default=400,
                        help="synthetic topology size")
    submit.add_argument("--topology-seed", type=int, default=11)
    submit.add_argument("--workers", type=int,
                        help="executor pool size")
    submit.add_argument("--shards", type=int, metavar="N",
                        help="sharded executor: shard count")

    jobs_list = jobs_sub.add_parser("list", help="every job's status")
    _target_arguments(jobs_list)
    jobs_list.add_argument("--json", action="store_true",
                           help="print the job list as JSON")

    jobs_show = jobs_sub.add_parser("show", help="one job's state")
    jobs_show.add_argument("job", help="job id (e.g. job-000001)")
    _target_arguments(jobs_show)

    jobs_cancel = jobs_sub.add_parser("cancel", help="cancel a job")
    jobs_cancel.add_argument("job", help="job id")
    _target_arguments(jobs_cancel)

    jobs_diff = jobs_sub.add_parser(
        "diff", help="deterministic run-to-run comparison of two "
                     "recorded runs",
    )
    jobs_diff.add_argument("a", help="run id of the baseline side")
    jobs_diff.add_argument("b", help="run id of the comparison side")
    _target_arguments(jobs_diff)

    jobs_run = jobs_sub.add_parser(
        "run", help="execute every pending job of a --store in the "
                    "foreground (also the crash-recovery path: "
                    "mid-flight jobs resume their run files)",
    )
    _target_arguments(jobs_run, server=False)
    return parser


def _cmd_compress(args: argparse.Namespace) -> int:
    vrps = list(read_vrp_csv(args.vrps))
    compressed = compress_vrps(vrps)
    stats = CompressionStats(len(vrps), len(compressed))
    if args.output:
        write_vrp_csv(compressed, args.output)
    else:
        write_vrp_csv(compressed, sys.stdout)
    print(f"compress_roas: {stats}", file=sys.stderr)
    return 0


def _cmd_minimal(args: argparse.Namespace) -> int:
    vrps = list(read_vrp_csv(args.vrps))
    announced = list(read_origin_pairs(args.rib))
    minimal = to_minimal_vrps(vrps, announced)
    if args.output:
        write_vrp_csv(minimal, args.output)
    else:
        write_vrp_csv(minimal, sys.stdout)
    print(
        f"minimal ROAs: {len(vrps)} tuples -> {len(minimal)} "
        f"announced-and-valid prefixes",
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    vrps = list(read_vrp_csv(args.vrps))
    announced = list(read_origin_pairs(args.rib))
    measurements = measure_section6(vrps, announced)
    for line in measurements.summary_lines():
        print(line)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    snapshot = generate_snapshot(
        GeneratorConfig(scale=args.scale, seed=args.seed)
    )
    vrp_path = out_dir / "vrps.csv"
    rib_path = out_dir / "rib.txt"
    write_vrp_csv(snapshot.vrps, vrp_path)
    write_origin_pairs(snapshot.announced, rib_path)
    print(f"wrote {vrp_path} ({len(snapshot.vrps)} VRPs)")
    print(f"wrote {rib_path} ({len(snapshot.announced)} announcements)")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    if args.vrps:
        if not args.rib:
            print("--rib is required with --vrps", file=sys.stderr)
            return 2
        vrps = list(read_vrp_csv(args.vrps))
        announced = list(read_origin_pairs(args.rib))
    else:
        snapshot = generate_snapshot(
            GeneratorConfig(scale=args.scale, seed=args.seed)
        )
        vrps = snapshot.vrps
        announced = snapshot.announced
    print(compute_table1(vrps, announced).render())
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    series = generate_weekly_series(
        SeriesConfig(base=GeneratorConfig(scale=args.scale, seed=args.seed))
    )
    print(render_panel(compute_figure3a(series)))
    print()
    print(render_panel(compute_figure3b(series)))
    return 0


def _cmd_roa_lint(args: argparse.Namespace) -> int:
    announced = list(read_origin_pairs(args.rib))
    # Group VRP rows into per-AS ROAs: the CSV does not preserve ROA
    # boundaries, so each AS's tuples are reviewed as one ROA.
    by_asn: dict[int, list] = {}
    for vrp in read_vrp_csv(args.vrps):
        max_length = vrp.max_length if vrp.uses_max_length else None
        by_asn.setdefault(vrp.asn, []).append(
            RoaPrefix(vrp.prefix, max_length)
        )
    roas = [Roa(asn, entries) for asn, entries in sorted(by_asn.items())]
    reviews = lint_roas(roas, announced)
    errors = 0
    for review in reviews:
        if review.severity is Severity.ERROR:
            errors += 1
        if args.errors_only and review.severity is not Severity.ERROR:
            continue
        print(review.render())
        print()
    print(
        f"{len(reviews)} ROAs reviewed, {errors} with vulnerabilities",
        file=sys.stderr,
    )
    return 0 if errors == 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .lint import (
        EXIT_CLEAN,
        EXIT_FINDINGS,
        EXIT_USAGE,
        LintUsageError,
        lint_paths,
        render_text,
        rule_catalog,
        to_json,
    )

    if args.list_rules:
        for rule_id, summary in rule_catalog().items():
            print(f"{rule_id}  {summary}")
        return EXIT_CLEAN
    # No paths: lint the installed library itself, wherever it lives.
    paths = args.paths or [Path(__file__).resolve().parent]
    try:
        findings = lint_paths(paths, rules=args.rule)
    except LintUsageError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(to_json(findings), indent=2))
    else:
        print(render_text(findings))
    return EXIT_FINDINGS if findings else EXIT_CLEAN


def _cmd_rtr_serve(args: argparse.Namespace) -> int:
    # Imported here so the CLI works without loading socket machinery
    # for the pure-analysis commands.
    from .core.pipeline import LocalCache

    cache = LocalCache(compress=args.compress)
    cache.refresh_from_vrps(read_vrp_csv(args.vrps))
    server = cache.serve(host=args.host, port=args.port, backend="thread")
    print(
        f"serving {len(cache.pdus)} PDUs on {server.host}:{server.port} "
        f"(compress={'on' if args.compress else 'off'}); Ctrl-C to stop"
    )
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        return 0
    finally:
        cache.close()


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the pure-analysis commands stay socket-free.
    import asyncio

    from .serve import (
        AsyncRtrServer,
        QueryHttpServer,
        QueryService,
        ServeMetrics,
    )

    vrps = list(read_vrp_csv(args.vrps))
    if args.compress:
        vrps = compress_vrps(vrps)

    if args.jobs and not args.jobs_store:
        print("--jobs requires --jobs-store", file=sys.stderr)
        return 2

    runs = None
    store = None
    scheduler = None
    if args.results or args.jobs:
        from .results import ResultsStore, RunRegistry

        runs = RunRegistry()
        if args.results:
            store = ResultsStore(args.results)
            loaded = runs.load_store(store)
            print(f"results: {loaded} recorded runs from {args.results}")
    if args.jobs:
        from .faults import install_from_env
        from .jobs import JobScheduler, JobStore

        # Dispatched fault plans (repro-roa chaos; CI drills) apply to
        # the scheduler's jobs.* sites too.
        install_from_env()
        job_store = JobStore(args.jobs_store)
        scheduler = JobScheduler(job_store, runs=runs)
        store = scheduler.results
        loaded = runs.load_store(scheduler.results)
        print(
            f"jobs: {len(job_store.pending())} pending, "
            f"{loaded} recorded runs in {args.jobs_store}"
        )

    async def run() -> None:
        import json
        import signal

        from .obs import get_registry

        # The process registry, not a private one: a single
        # /metrics?format=prometheus scrape then covers everything the
        # process recorded (serve.*, and any experiment run in-process).
        metrics = ServeMetrics(registry=get_registry())
        rtr = AsyncRtrServer(
            vrps, host=args.rtr_host, port=args.rtr_port, metrics=metrics,
            max_clients=args.max_clients,
            client_deadline=args.client_deadline)
        await rtr.start()
        service = QueryService(vrps, metrics=metrics)
        service.serial = rtr.state.serial
        drain_timeout = (
            args.drain_timeout if args.drain_timeout is not None
            else 10.0
        )
        if scheduler is not None:
            from .jobs import JobsHttpServer

            http = JobsHttpServer(
                service, scheduler,
                host=args.http_host, port=args.http_port,
                metrics=metrics, max_clients=args.max_clients,
                drain_timeout=drain_timeout)
        else:
            http = QueryHttpServer(
                service, host=args.http_host, port=args.http_port,
                metrics=metrics, runs=runs, store=store,
                max_clients=args.max_clients,
                drain_timeout=drain_timeout)
        await http.start()
        if scheduler is not None:
            scheduler.start()
        print(
            f"serving: rtr={rtr.host}:{rtr.port} "
            f"http={http.host}:{http.port} "
            f"serial={rtr.state.serial} vrps={len(vrps)} "
            f"compress={'on' if args.compress else 'off'}"
            f"{' jobs=on' if scheduler is not None else ''}; "
            f"Ctrl-C to stop"
        )
        tasks = []
        if args.metrics_interval:
            async def log_metrics() -> None:
                while True:
                    await asyncio.sleep(args.metrics_interval)
                    print(
                        f"metrics: {json.dumps(metrics.snapshot())}",
                        file=sys.stderr,
                    )

            tasks.append(asyncio.ensure_future(log_metrics()))
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without signal handlers: Ctrl-C only
        try:
            await stop.wait()  # serve until SIGTERM (or Ctrl-C raises)
            # Graceful drain: shed new HTTP work (healthz flips to
            # 503 for load balancers), wait out in-flight requests,
            # then close both servers.
            print("SIGTERM: draining ...", file=sys.stderr)
            drained = await http.drain()
            print(
                f"drained in {drained:.3f}s; shutting down",
                file=sys.stderr,
            )
            await http.close()
            await rtr.close()
            if scheduler is not None:
                scheduler.stop()
        finally:
            for task in tasks:
                task.cancel()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _experiment_spec_from_args(args: argparse.Namespace):
    from .exper import (
        AnyAsPairSampler,
        AttackConfig,
        ExperimentSpec,
        StubPairSampler,
        policy_from_name,
    )

    # A threshold/cadence flag without --stopping means the user wants
    # stopping: imply "ci" rather than silently ignoring the flag.
    if args.stopping is None and any(
        getattr(args, name) is not None
        for name in ("stop_ci_width", "stop_min_trials",
                     "stop_check_every")
    ):
        args.stopping = "ci"

    if args.spec:
        spec = ExperimentSpec.from_json(
            Path(args.spec).read_text(encoding="utf-8")
        )
        overrides = {}
        if args.engine and args.engine != spec.engine:
            overrides["engine"] = args.engine
        for name in ("executor", "stopping", "stop_ci_width",
                     "stop_min_trials", "stop_check_every"):
            value = getattr(args, name)
            if value is not None and value != getattr(spec, name):
                overrides[name] = value
        if overrides:
            import dataclasses

            spec = dataclasses.replace(spec, **overrides)
        return spec
    attacks = [
        AttackConfig(kind.strip(), attackers=args.attackers,
                     prepend=args.prepend)
        for kind in args.kinds.split(",") if kind.strip()
    ]
    policies = [
        policy_from_name(name.strip())
        for name in args.policies.split(",") if name.strip()
    ]
    if args.fractions == "all":
        fractions: tuple = (None,)
    else:
        fractions = tuple(
            None if token.strip() == "all" else float(token)
            for token in args.fractions.split(",") if token.strip()
        )
    sampler = (
        AnyAsPairSampler() if args.sampler == "any" else StubPairSampler()
    )
    from .netbase import Prefix

    stop_kwargs = {
        name: value
        for name in ("stopping", "stop_ci_width", "stop_min_trials",
                     "stop_check_every")
        if (value := getattr(args, name)) is not None
    }
    return ExperimentSpec.grid(
        attacks, policies,
        trials=args.trials,
        seed=args.seed,
        fractions=fractions,
        sampler=sampler,
        victim_prefix=Prefix.parse(args.victim_prefix),
        attack_prefix=(
            Prefix.parse(args.attack_prefix) if args.attack_prefix else None
        ),
        engine=args.engine or "object",
        executor=args.executor or "serial",
        **stop_kwargs,
    )


def _cmd_experiment(args: argparse.Namespace) -> int:
    import json

    from .exper import ExperimentRunner
    from .netbase.errors import ReproError

    try:
        spec = _experiment_spec_from_args(args)
    except (ReproError, OSError, ValueError) as exc:
        # OSError: unreadable --spec file; ValueError: malformed
        # numbers in flags (e.g. --fractions 0,abc).
        print(f"bad experiment spec: {exc}", file=sys.stderr)
        return 2
    if args.emit_spec:
        print(spec.to_json())
        return 0

    if args.topology:
        from .data import read_caida

        topology = read_caida(args.topology)
    else:
        from .data import TopologyProfile, generate_topology

        topology = generate_topology(
            TopologyProfile(ases=args.ases), random.Random(args.topology_seed)
        )
    sink = None
    if args.sink:
        from .results import JsonlSink

        sink = JsonlSink(args.sink)
    elif args.resume:
        print("--resume requires --sink", file=sys.stderr)
        return 2
    reporter = None
    if args.progress:
        from .obs import ProgressReporter

        reporter = ProgressReporter(
            spec, interval=args.progress_interval
        )
    if args.trace:
        from .obs import enable_tracing

        enable_tracing()
    shard_transport = None
    if args.shard_hosts:
        from .serve import HttpShardTransport

        try:
            shard_transport = HttpShardTransport(
                [h for h in args.shard_hosts.split(",") if h.strip()]
            )
        except ReproError as exc:
            print(f"bad --shard-hosts: {exc}", file=sys.stderr)
            return 2
    try:
        runner = ExperimentRunner(
            topology, spec, executor=args.executor, workers=args.workers,
            sink=sink, resume_from=sink if args.resume else None,
            shards=args.shards, shard_store=args.shard_store,
            shard_transport=shard_transport,
            shard_retries=args.shard_retries,
            shard_timeout=args.shard_timeout,
        )
        print(
            f"topology: {len(topology)} ASes, "
            f"{topology.edge_count()} links; "
            f"{spec.total_trials} trials x {len(spec.cells)} cells "
            f"({runner.executor} executor)",
            file=sys.stderr,
        )
        result = runner.run(
            on_record=reporter.record if reporter is not None else None
        )
    except (ReproError, OSError) as exc:
        # OSError: an unwritable/unreadable --sink path.
        print(f"experiment failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if sink is not None:
            sink.close()
        if reporter is not None:
            reporter.finish()
        if args.trace:
            from .obs import disable_tracing, write_chrome_trace

            disable_tracing()
            events = write_chrome_trace(args.trace)
            print(
                f"trace: {events} events -> {args.trace}",
                file=sys.stderr,
            )
    if sink is not None:
        print(f"recorded run: {args.sink}", file=sys.stderr)
    if args.json:
        print(json.dumps(_result_to_json(result), indent=2))
    else:
        print(result.render())
    return 0


def _result_to_json(result) -> dict:
    from .results import result_to_json

    return result_to_json(result)


def _cmd_results(args: argparse.Namespace) -> int:
    import json

    from .netbase.errors import ReproError
    from .results import merge_runs, read_run, run_result

    try:
        if args.results_command == "merge":
            header, count = merge_runs(args.output, args.inputs)
            print(
                f"merged {len(args.inputs)} runs "
                f"(spec hash {header.spec_hash}) into {args.output}: "
                f"{count} records"
            )
            return 0
        header, records = read_run(args.run)
        result, dropped = run_result(header, records)
    except (ReproError, OSError) as exc:
        print(f"results {args.results_command} failed: {exc}",
              file=sys.stderr)
        return 1
    print(
        f"run {args.run}: spec hash {header.spec_hash}, "
        f"seed {header.seed}, engine {header.engine}, "
        f"{len(records)} records"
        + (f" ({dropped} past the completed prefix)" if dropped else ""),
        file=sys.stderr,
    )
    if args.json:
        print(json.dumps(_result_to_json(result), indent=2))
    else:
        print(result.render())
    return 0


def _shard_worker_topology(args: argparse.Namespace):
    if args.topology:
        from .data import read_caida

        return read_caida(args.topology)
    from .data import TopologyProfile, generate_topology

    return generate_topology(
        TopologyProfile(ases=args.ases), random.Random(args.topology_seed)
    )


def _cmd_shard_worker(args: argparse.Namespace) -> int:
    from .netbase.errors import ReproError

    if args.listen:
        import time as time_module

        from .serve import ThreadedShardWorkerServer

        topology = _shard_worker_topology(args)
        try:
            server = ThreadedShardWorkerServer(
                topology, host=args.host, port=args.port
            ).start()
        except OSError as exc:
            print(f"shard-worker failed to bind: {exc}", file=sys.stderr)
            return 1
        print(
            f"shard worker: {len(topology)} ASes "
            f"(topology {server.topology_hash}) on "
            f"http://{server.host}:{server.port}",
            file=sys.stderr,
        )
        try:
            while True:
                time_module.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return 0

    if not (args.spec and args.out is not None
            and args.shard is not None and args.shards is not None):
        print(
            "shard-worker needs --listen, or all of "
            "--spec/--shard/--shards/--out",
            file=sys.stderr,
        )
        return 2
    from .exper import ExperimentSpec, plan_shards, run_shard
    from .results import JsonlSink

    try:
        spec = ExperimentSpec.from_json(
            Path(args.spec).read_text(encoding="utf-8")
        )
        topology = _shard_worker_topology(args)
        plan = plan_shards(spec, args.shards)
        if not 0 <= args.shard < len(plan):
            raise ReproError(
                f"--shard {args.shard} outside the "
                f"{len(plan)}-shard plan"
            )
        shard = plan[args.shard]
        sink = JsonlSink(args.out)
        try:
            written = run_shard(
                topology, spec, shard, sink=sink, resume=True
            )
        finally:
            sink.close()
    except (ReproError, OSError) as exc:
        print(f"shard-worker failed: {exc}", file=sys.stderr)
        return 1
    print(
        f"shard {shard.shard_index}/{shard.shard_count}: "
        f"{written} records ({shard.trial_count} trials x "
        f"{len(spec.cells)} cells) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _chaos_plan(args: argparse.Namespace):
    from .faults import FaultPlan

    if args.plan:
        return FaultPlan.from_json(
            Path(args.plan).read_text(encoding="utf-8")
        )
    profile = "sharded" if args.drill == "experiment" else "serve"
    return FaultPlan.generate(
        args.seed, shards=args.shards, rules=args.rules, profile=profile,
    )


def _chaos_experiment(args: argparse.Namespace, plan) -> int:
    """Sharded grid run under worker faults.

    Stdout is exactly what ``repro-roa experiment --json`` prints for
    the same grid run serially and fault-free — the chaos-equivalence
    invariant, checked byte-for-byte by the CI ``chaos-smoke`` job.
    """
    import json
    import os as os_module

    from .data import TopologyProfile, generate_topology
    from .exper import AttackConfig, ExperimentRunner, ExperimentSpec
    from .exper import policy_from_name
    from .faults import PLAN_ENV, install
    from .netbase.errors import ReproError

    # The exact default grid of `repro-roa experiment` (attacks,
    # policies, sampler, victim prefix), so results compare 1:1.
    spec = ExperimentSpec.grid(
        [
            AttackConfig("forged-origin-subprefix", attackers=1,
                         prepend=0),
            AttackConfig("forged-origin", attackers=1, prepend=0),
        ],
        [policy_from_name("minimal"), policy_from_name("maxlength-loose")],
        trials=args.trials,
        seed=args.spec_seed,
    )
    topology = generate_topology(
        TopologyProfile(ases=args.ases), random.Random(args.topology_seed)
    )
    # Ship the plan to shard workers through the environment (local
    # processes inherit it; install_from_env() gives each attempt
    # fresh hit counters) and install it here for any in-process path.
    os_module.environ[PLAN_ENV] = plan.to_json()
    install(plan)
    sink = None
    if args.sink:
        from .results import JsonlSink

        sink = JsonlSink(args.sink)
    try:
        runner = ExperimentRunner(
            topology, spec, executor="sharded", shards=args.shards,
            shard_store=args.shard_store, sink=sink,
        )
        print(
            f"chaos: {len(plan.rules)} fault rules (seed {plan.seed}) "
            f"against {runner.shards} shards, "
            f"{spec.total_trials} trials x {len(spec.cells)} cells",
            file=sys.stderr,
        )
        result = runner.run()
    except (ReproError, OSError) as exc:
        print(f"chaos experiment drill failed: {exc}", file=sys.stderr)
        return 1
    finally:
        if sink is not None:
            sink.close()
        os_module.environ.pop(PLAN_ENV, None)
    # Worker faults fire inside worker processes; the coordinator
    # observes them as shard failures and retries, so those counters
    # are the drill's evidence (plan.fired covers in-process sites).
    from .obs import get_registry

    snap = get_registry().snapshot()
    print(
        f"shards failed: {snap.get('exper.shards_failed', 0)}, "
        f"retried: {snap.get('exper.shards_retried', 0)}; "
        f"in-process faults fired: {len(plan.fired)}",
        file=sys.stderr,
    )
    if args.sink:
        print(f"recorded run: {args.sink}", file=sys.stderr)
    if args.json:
        print(json.dumps(_result_to_json(result), indent=2))
    else:
        print(result.render())
    return 0


def _chaos_serve(args: argparse.Namespace, plan) -> int:
    """HTTP tier under request faults, then a graceful-drain check.

    Exit status 0 requires observing the health flip: ``/healthz``
    answers 200 before the drain and 503 during it (with ``/validity``
    shed alongside) — the contract load balancers rely on.
    """
    import asyncio
    import json

    from .faults import install
    from .netbase import Prefix
    from .rpki import Vrp
    from .serve import QueryHttpServer, QueryService

    install(plan)

    async def probe(host: str, port: int, path: str) -> int:
        """Status code of one GET, or 0 if the connection died."""
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Connection: close\r\n\r\n".encode("ascii")
            )
            await writer.drain()
            status = await reader.readline()
            parts = status.split()
            return int(parts[1]) if len(parts) >= 2 else 0
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    async def drill() -> dict:
        vrps = [
            Vrp(Prefix.parse("168.122.0.0/16"), 24, 111),
            Vrp(Prefix.parse("10.0.0.0/8"), 16, 65000),
        ]
        server = QueryHttpServer(QueryService(vrps), drain_timeout=5.0)
        await server.start()
        try:
            before = await probe(server.host, server.port, "/healthz")
            attempted, failed = 8, 0
            for _ in range(attempted):
                try:
                    status = await probe(
                        server.host, server.port,
                        "/validity?asn=111&prefix=168.122.10.0/24",
                    )
                except OSError:
                    status = 0  # reset before the status line arrived
                if status != 200:
                    failed += 1  # injected faults land here — expected
            drained = await server.drain()
            during = await probe(server.host, server.port, "/healthz")
            shed = await probe(
                server.host, server.port,
                "/validity?asn=111&prefix=168.122.10.0/24",
            )
        finally:
            await server.close()
        return {
            "drill": "serve",
            "plan_seed": plan.seed,
            "rules": len(plan.rules),
            "faults_fired": len(plan.fired),
            "requests_attempted": attempted,
            "requests_failed": failed,
            "healthz_before": before,
            "drain_seconds": round(drained, 6),
            "healthz_during_drain": during,
            "validity_during_drain": shed,
            "requests_shed": server.metrics["requests_shed"],
        }

    report = asyncio.run(drill())
    print(json.dumps(report, indent=2 if args.json else None))
    flipped = (
        report["healthz_before"] == 200
        and report["healthz_during_drain"] == 503
        and report["validity_during_drain"] == 503
    )
    if not flipped:
        print("chaos serve drill: health flip NOT observed",
              file=sys.stderr)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .netbase.errors import ReproError

    try:
        plan = _chaos_plan(args)
    except (ReproError, OSError) as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return 2
    if args.emit_plan:
        print(plan.to_json())
        return 0
    if args.drill == "serve":
        return _chaos_serve(args, plan)
    return _chaos_experiment(args, plan)


def _job_spec_from_args(args: argparse.Namespace):
    from .jobs import JobSpec

    return JobSpec(
        spec=_experiment_spec_from_args(args),
        run=args.run,
        ases=args.ases,
        topology_seed=args.topology_seed,
        workers=args.workers,
        shards=args.shards,
    )


def _jobs_request(
    server: str, method: str, path: str, body: Optional[dict] = None
):
    """One platform HTTP call; returns ``(status, response text)``."""
    import json
    from urllib import error, request

    from .netbase.errors import ReproError

    url = server.rstrip("/") + path
    data = None if body is None else json.dumps(body).encode("utf-8")
    http_request = request.Request(url, data=data, method=method)
    if data is not None:
        http_request.add_header("Content-Type", "application/json")
    try:
        with request.urlopen(http_request, timeout=60) as response:
            return response.status, response.read().decode("utf-8")
    except error.HTTPError as exc:
        return exc.code, exc.read().decode("utf-8")
    except (error.URLError, OSError) as exc:
        raise ReproError(f"{url}: {exc}")


def _jobs_local(args: argparse.Namespace, store_dir: str) -> int:
    import json

    from .jobs import JobScheduler, JobStore

    store = JobStore(store_dir)
    command = args.jobs_command
    if command == "submit":
        job_id = JobScheduler(store).submit(_job_spec_from_args(args))
        state = store.job(job_id)
        print(f"{job_id} queued (run {state.spec.run})")
        return 0
    if command == "list":
        summaries = [
            state.summary()
            for _, state in sorted(store.jobs().items())
        ]
        if args.json:
            print(json.dumps({"jobs": summaries}, indent=2))
        else:
            for summary in summaries:
                print(
                    f"{summary['job']}  {summary['status']:<9}  "
                    f"run={summary['run']}  "
                    f"spec={summary['spec_hash'][:12]}"
                )
            if not summaries:
                print("no jobs", file=sys.stderr)
        return 0
    if command == "show":
        state = store.job(args.job)
        if state is None:
            print(f"no job named {args.job!r}", file=sys.stderr)
            return 1
        print(json.dumps(state.summary(), indent=2))
        return 0
    if command == "cancel":
        state = JobScheduler(store).cancel(args.job)
        print(f"{args.job} cancelled (was {state.status})")
        return 0
    if command == "diff":
        from .results import run_diff_document

        results = store.results_store()
        a_header, a_records = results.read(args.a)
        b_header, b_records = results.read(args.b)
        document = run_diff_document(
            args.a, a_header, a_records, args.b, b_header, b_records
        )
        # Canonical serialization: byte-identical to the serve tier's
        # GET /diff of the same runs (a pinned determinism test).
        print(json.dumps(document, sort_keys=True,
                         separators=(",", ":")))
        return 0
    # "run": the foreground drain — also the crash-recovery path.
    from .faults import install_from_env

    install_from_env()
    executed = JobScheduler(store).run_pending()
    print(
        f"executed {executed} job(s); "
        f"{len(store.pending())} still pending",
        file=sys.stderr,
    )
    return 0


def _jobs_over_http(args: argparse.Namespace, server: str) -> int:
    from urllib.parse import quote, urlencode

    command = args.jobs_command
    if command == "submit":
        spec = _job_spec_from_args(args)
        status, body = _jobs_request(
            server, "POST", "/experiments", spec.to_json_dict()
        )
    elif command == "list":
        status, body = _jobs_request(server, "GET", "/jobs")
    elif command == "show":
        status, body = _jobs_request(
            server, "GET", f"/jobs/{quote(args.job)}"
        )
    elif command == "cancel":
        status, body = _jobs_request(
            server, "DELETE", f"/jobs/{quote(args.job)}"
        )
    else:  # diff
        query = urlencode({"a": args.a, "b": args.b})
        status, body = _jobs_request(server, "GET", f"/diff?{query}")
    if status >= 400:
        print(f"jobs {command} failed ({status}): {body}",
              file=sys.stderr)
        return 1
    print(body)
    return 0


def _cmd_jobs(args: argparse.Namespace) -> int:
    from .netbase.errors import ReproError

    command = args.jobs_command
    store_dir = getattr(args, "store", None)
    server = getattr(args, "server", None)
    if store_dir and server:
        print("choose one of --store or --server", file=sys.stderr)
        return 2
    if not store_dir and not server:
        print(
            f"jobs {command} needs --store DIR or --server URL",
            file=sys.stderr,
        )
        return 2
    try:
        if server:
            return _jobs_over_http(args, server)
        return _jobs_local(args, store_dir)
    except (ReproError, OSError, ValueError) as exc:
        # ValueError: malformed numbers in the grid flags.
        print(f"jobs {command} failed: {exc}", file=sys.stderr)
        return 1


_COMMANDS = {
    "compress": _cmd_compress,
    "minimal": _cmd_minimal,
    "analyze": _cmd_analyze,
    "generate": _cmd_generate,
    "roa-lint": _cmd_roa_lint,
    "lint": _cmd_lint,
    "table1": _cmd_table1,
    "figure3": _cmd_figure3,
    "rtr-serve": _cmd_rtr_serve,
    "serve": _cmd_serve,
    "experiment": _cmd_experiment,
    "results": _cmd_results,
    "shard-worker": _cmd_shard_worker,
    "chaos": _cmd_chaos,
    "jobs": _cmd_jobs,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point: parse ``argv`` and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
