"""Remote shard workers over the serve tier's HTTP channel.

The sharded executor (:mod:`repro.exper.sharded`) is transport-
agnostic: its coordinator drives any object with ``start`` / ``poll``
/ ``stop`` / ``collect``.  This module supplies the multi-host
implementation of that contract:

* :class:`ShardWorkerServer` — an asyncio HTTP server that holds one
  AS topology and executes dispatched shards on worker threads,
  streaming each into a local JSONL run file:

  - ``POST /shards`` — dispatch: ``{"shard": ..., "header": ...,
    "attempt": N, "finished": [[f, t], ...]}``.  The header carries
    the full spec *and* the topology digest; a digest mismatch is
    refused, so a worker can never silently evaluate the wrong world.
  - ``GET /shards`` / ``GET /shards/<i>`` — status and heartbeat
    (state, records written, seconds since the last record).
  - ``GET /shards/<i>/records`` — the shard's JSONL records.
  - ``POST /shards/<i>/cancel`` — stop a running shard.
  - ``GET /status`` — topology digest and shard count.

* :class:`ThreadedShardWorkerServer` — the synchronous facade, one
  private event loop in a daemon thread (the
  :class:`~repro.serve.rtr_async.ThreadedRtrServer` idiom).

* :class:`HttpShardTransport` — the coordinator-side client.  Shard
  *k*, attempt *a* lands on host ``(k + a) % len(hosts)``, so a retry
  after a dead or unreachable host is automatically a *reassignment*
  to the next one.  Completed shard records are downloaded to the
  coordinator's local shard store, after which merging, resume, and
  byte-identity work exactly as in the local-process case.

Workers honor the same :data:`~repro.exper.sharded.FAULT_ENV` fault
directives as local workers (in the *server's* environment), and
install any :data:`~repro.faults.PLAN_ENV` fault plan at start — both
are how the fault-injection tests exercise this path.  Hardening
(connection caps, drain, ``/healthz``) comes from
:class:`~repro.serve.http.HttpServerBase`.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from tempfile import mkdtemp
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exper.sharded import FAULT_ENV, Shard, _parse_fault, run_shard
from ..exper.spec import ExperimentSpec
from ..faults import RetryPolicy, fire, install_from_env
from ..netbase.errors import ReproError
from ..results.sinks import JsonlSink, RunHeader, topology_digest
from .http import HttpRequestError, HttpServerBase, TextPayload
from .metrics import ServeMetrics

__all__ = [
    "HttpShardTransport",
    "ShardWorkerServer",
    "ThreadedShardWorkerServer",
]

#: Content type of the ``/shards/<i>/records`` JSONL download.
_JSONL_CONTENT_TYPE = "application/x-ndjson"


class _WorkerJob:
    """One dispatched shard on a worker: state shared between the
    executor thread that runs it and the event loop that reports it."""

    __slots__ = (
        "shard", "attempt", "path", "state", "reason", "records",
        "beat", "cancelled", "future",
    )

    def __init__(self, shard: Shard, attempt: int, path: Path) -> None:
        self.shard = shard
        self.attempt = attempt
        self.path = path
        self.state = "running"
        self.reason: Optional[str] = None
        self.records = 0
        self.beat = time.monotonic()
        self.cancelled = False
        self.future: Optional[asyncio.Future] = None

    def status(self) -> Dict[str, object]:
        age = (
            time.monotonic() - self.beat
            if self.state == "running" else None
        )
        return {
            "shard": self.shard.shard_index,
            "attempt": self.attempt,
            "state": self.state,
            "records": self.records,
            "age": age,
            "reason": self.reason,
        }


class ShardWorkerServer(HttpServerBase):
    """Execute dispatched experiment shards over HTTP.

    One server holds one topology (the heavyweight thing worth
    pre-placing on a host); every dispatch carries its own spec, shard
    slice, and run header, so one worker serves any number of grids
    over that topology.  Shard evaluation runs in the default thread
    executor — the event loop stays free for status polls, which is
    what makes the coordinator's heartbeat monitoring work.
    Connection handling, load shedding, drain, and the health
    endpoints come from :class:`~repro.serve.http.HttpServerBase`.
    """

    def __init__(
        self,
        topology,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workdir: Optional[str] = None,
        metrics: Optional[ServeMetrics] = None,
        max_clients: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        drain_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            metrics=metrics,
            max_clients=max_clients,
            idle_timeout=idle_timeout,
            drain_timeout=drain_timeout,
        )
        self.topology = topology
        self.topology_hash = topology_digest(topology)
        self._workdir = Path(workdir) if workdir is not None else None
        self._own_workdir: Optional[Path] = None
        self._jobs: Dict[int, _WorkerJob] = {}

    async def start(self) -> "ShardWorkerServer":
        if self._workdir is None:
            self._own_workdir = Path(mkdtemp(prefix="repro-shard-worker-"))
            self._workdir = self._own_workdir
        # A worker launched under a fault plan honors it: fresh parse,
        # fresh hit counters, deterministic per process.
        install_from_env()
        await super().start()
        return self

    async def close(self) -> None:
        for job in self._jobs.values():
            job.cancelled = True
        futures = [
            job.future for job in self._jobs.values()
            if job.future is not None and not job.future.done()
        ]
        stuck: set = set()
        if futures:
            _, pending = await asyncio.wait(futures, timeout=5)
            if pending:
                # Jobs that ignored the cancelled flag: cancel their
                # futures outright and wait again — close() must not
                # leak still-running shard evaluations.
                for future in pending:
                    future.cancel()
                _, stuck = await asyncio.wait(pending, timeout=5)
        await super().close()
        if self._own_workdir is not None:
            import shutil

            await asyncio.get_running_loop().run_in_executor(
                None, shutil.rmtree, self._own_workdir, True)
            self._own_workdir = None
        if stuck:
            raise ReproError(
                f"{len(stuck)} shard job(s) still running after close "
                f"cancelled them"
            )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object]:
        if path == "/shards" and method == "POST":
            return await self._dispatch(body)
        if path == "/shards" and method == "GET":
            return 200, {
                "shards": [
                    self._jobs[index].status()
                    for index in sorted(self._jobs)
                ]
            }
        if path == "/status" and method == "GET":
            return 200, {
                "topology_hash": self.topology_hash,
                "shards": len(self._jobs),
            }
        if path.startswith("/shards/"):
            return await self._shard_route(method, path)
        if path in ("/shards", "/status"):
            return 405, {"error": f"{method} not allowed on {path}"}
        return 404, {"error": f"no such endpoint {path}"}

    async def _shard_route(
        self, method: str, path: str
    ) -> Tuple[int, object]:
        parts = path[len("/shards/"):].split("/")
        try:
            index = int(parts[0])
        except ValueError:
            raise HttpRequestError(f"bad shard index {parts[0]!r}")
        job = self._jobs.get(index)
        if job is None:
            return 404, {"error": f"no shard {index} on this worker"}
        if len(parts) == 1 and method == "GET":
            return 200, job.status()
        if parts[1:] == ["records"] and method == "GET":
            loop = asyncio.get_running_loop()
            try:
                text = await loop.run_in_executor(
                    None, _read_text, job.path)
            except OSError:
                return 404, {
                    "error": f"shard {index} has no records yet"
                }
            return 200, TextPayload(text, _JSONL_CONTENT_TYPE)
        if parts[1:] == ["cancel"] and method == "POST":
            if job.state == "running":
                job.cancelled = True
            return 200, job.status()
        return 404, {"error": f"no such endpoint {path}"}

    async def _dispatch(self, body: bytes) -> Tuple[int, object]:
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HttpRequestError(f"invalid JSON body: {exc}")
        if not isinstance(document, dict):
            raise HttpRequestError("dispatch body must be a JSON object")
        try:
            shard = Shard.from_json_dict(document["shard"])
            header = RunHeader.from_json_dict(document["header"])
            attempt = int(document.get("attempt", 0))
            finished = frozenset(
                (int(pair[0]), int(pair[1]))
                for pair in document.get("finished", ())
            )
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise HttpRequestError(f"bad dispatch body: {exc}")
        except ReproError as exc:
            raise HttpRequestError(str(exc))
        if (
            header.topology_hash is not None
            and header.topology_hash != self.topology_hash
        ):
            raise HttpRequestError(
                f"topology mismatch: dispatch is for "
                f"{header.topology_hash}, this worker holds "
                f"{self.topology_hash}"
            )
        try:
            spec = header.experiment_spec()
        except ReproError as exc:
            raise HttpRequestError(f"bad spec in header: {exc}")
        fire(
            "serve.shards.dispatch",
            shard=shard.shard_index,
            attempt=attempt,
        )
        existing = self._jobs.get(shard.shard_index)
        if existing is not None and existing.state == "running":
            # A superseded attempt (the coordinator timed it out and
            # reassigned) keeps writing to its own per-attempt file
            # until it notices the flag; it can't corrupt the new one.
            existing.cancelled = True
        assert self._workdir is not None, "server not started"
        path = self._workdir / (
            f"shard{shard.shard_index}.attempt{attempt}.jsonl"
        )
        job = _WorkerJob(shard, attempt, path)
        self._jobs[shard.shard_index] = job
        self.metrics.increment("shard_dispatches")
        loop = asyncio.get_running_loop()
        job.future = loop.run_in_executor(
            None, self._execute, job, spec, finished, header)
        return 200, job.status()

    # ------------------------------------------------------------------
    # Shard execution (worker threads)
    # ------------------------------------------------------------------

    def _execute(
        self,
        job: _WorkerJob,
        spec: ExperimentSpec,
        finished: frozenset,
        header: RunHeader,
    ) -> None:
        sink = JsonlSink(job.path)
        try:
            fire(
                "serve.shards.execute",
                shard=job.shard.shard_index,
                attempt=job.attempt,
            )
            fault = _parse_fault(
                os.environ.get(FAULT_ENV),
                job.shard.shard_index,
                job.attempt,
            )

            def on_record(record) -> None:
                if job.cancelled:
                    raise ReproError(
                        f"shard {job.shard.shard_index} cancelled"
                    )
                job.records += 1
                job.beat = time.monotonic()

            run_shard(
                self.topology,
                spec,
                job.shard,
                sink=sink,
                resume=True,
                finished=finished,
                header=header,
                on_record=on_record,
                fault=fault,
                attempt=job.attempt,
            )
        except BaseException as exc:
            job.reason = f"{type(exc).__name__}: {exc}"
            job.state = "cancelled" if job.cancelled else "failed"
            self.metrics.increment("shard_failures")
        else:
            job.state = "done"
            self.metrics.increment("shard_completions")
        finally:
            sink.close()


def _read_text(path: Path) -> str:
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


class ThreadedShardWorkerServer:
    """:class:`ShardWorkerServer` behind a synchronous facade.

    Runs a private event loop in a daemon thread and proxies
    ``start/close`` through ``run_coroutine_threadsafe`` — the same
    idiom as :class:`~repro.serve.rtr_async.ThreadedRtrServer`, so
    synchronous tests and the ``repro-roa shard-worker`` command can
    hold a live worker without touching asyncio.
    """

    def __init__(
        self,
        topology,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workdir: Optional[str] = None,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        self._async = ShardWorkerServer(
            topology, host=host, port=port, workdir=workdir,
            metrics=metrics,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def topology_hash(self) -> str:
        return self._async.topology_hash

    @property
    def metrics(self) -> ServeMetrics:
        return self._async.metrics

    @property
    def host(self) -> str:
        return self._async.host

    @property
    def port(self) -> int:
        return self._async.port

    def start(self) -> "ThreadedShardWorkerServer":
        ready = threading.Event()
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="shard-worker-loop", daemon=True)
        self._thread.start()
        ready.wait()
        try:
            self._call(self._async.start())
        except BaseException:
            # Don't leak the loop thread when the bind fails.
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()
            self._loop = None
            self._thread = None
            raise
        return self

    def close(self) -> None:
        if self._loop is None:
            return
        self._call(self._async.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                # Closing the loop under a still-running thread would
                # corrupt it; surface the wedge instead of pretending
                # the worker stopped.
                raise ReproError(
                    "shard-worker-loop thread did not stop within 5s"
                )
        self._loop.close()
        self._loop = None
        self._thread = None

    def _call(self, coro):  # type: ignore[no-untyped-def]
        assert self._loop is not None, "server not started"
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def __enter__(self) -> "ThreadedShardWorkerServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class _TransportUnreachable(ReproError):
    """A worker request failed at the transport level (retryable)."""


class _HttpJob:
    """Coordinator-side record of one dispatched remote shard."""

    __slots__ = ("shard", "host", "attempt", "dead")

    def __init__(
        self,
        shard: Shard,
        host: str,
        attempt: int,
        dead: Optional[str] = None,
    ) -> None:
        self.shard = shard
        self.host = host
        self.attempt = attempt
        self.dead = dead


class HttpShardTransport:
    """Dispatch shards to :class:`ShardWorkerServer` hosts.

    Implements the :class:`~repro.exper.sharded.ShardCoordinator`
    transport contract over HTTP.  Shard *k* at attempt *a* goes to
    ``hosts[(k + a) % len(hosts)]``: retries rotate to the next host,
    so the coordinator's ordinary retry loop doubles as dead-host
    reassignment.  A dispatch that can't even reach its host is
    reported as a failed shard on the next ``poll`` rather than
    raised, feeding the same retry path.

    Every HTTP round trip passes the ``serve.shards.request`` fault
    site and retries transient failures under ``retry`` — the shared
    :class:`~repro.faults.RetryPolicy` — before reporting the request
    failed.  The default policy retries twice with a short jittered
    backoff, so one dropped packet does not cost a whole shard
    reassignment; dead hosts still surface quickly and feed the
    coordinator's rotation.

    ``hosts`` are base URLs (``http://10.0.0.7:8293``) or bare
    ``host:port`` pairs.
    """

    def __init__(
        self,
        hosts: Sequence[str],
        *,
        request_timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if not hosts:
            raise ReproError(
                "HttpShardTransport needs at least one worker host"
            )
        self.hosts: List[str] = [_normalize_host(h) for h in hosts]
        self.request_timeout = float(request_timeout)
        self.retry = retry if retry is not None else RetryPolicy(
            retries=2, base_delay=0.05, jitter=0.5
        )
        self._jobs: Dict[int, _HttpJob] = {}

    def host_for(self, shard_index: int, attempt: int) -> str:
        """The host shard ``shard_index`` lands on at ``attempt``."""
        return self.hosts[(shard_index + attempt) % len(self.hosts)]

    def start(
        self,
        shard: Shard,
        path: Path,
        finished: Iterable[Tuple[int, int]],
        attempt: int,
        header: RunHeader,
    ) -> None:
        """Dispatch one shard to its host for this attempt."""
        host = self.host_for(shard.shard_index, attempt)
        body = json.dumps({
            "shard": shard.to_json_dict(),
            "header": header.to_json_dict(),
            "attempt": attempt,
            "finished": sorted(
                [int(f), int(t)] for f, t in finished
            ),
        }).encode("utf-8")
        job = _HttpJob(shard, host, attempt)
        try:
            self._request("POST", f"{host}/shards", body)
        except ReproError as exc:
            job.dead = str(exc)
        self._jobs[shard.shard_index] = job

    def poll(self) -> Dict[int, Tuple[str, object]]:
        """Status of every dispatched shard, straight off its host."""
        statuses: Dict[int, Tuple[str, object]] = {}
        for index in sorted(self._jobs):
            job = self._jobs[index]
            if job.dead is not None:
                statuses[index] = ("failed", job.dead)
                continue
            try:
                doc = self._request(
                    "GET", f"{job.host}/shards/{index}")
            except ReproError as exc:
                statuses[index] = ("failed", str(exc))
                continue
            state = doc.get("state")
            if state == "done":
                statuses[index] = ("done", None)
            elif state == "running":
                statuses[index] = (
                    "running", float(doc.get("age") or 0.0))
            else:
                reason = doc.get("reason") or (
                    f"worker reported state {state!r}"
                )
                statuses[index] = ("failed", str(reason))
        return statuses

    def stop(self, shard_index: int) -> None:
        """Cancel a shard on its host (best effort) and forget it."""
        job = self._jobs.pop(shard_index, None)
        if job is None or job.dead is not None:
            return
        try:
            self._request(
                "POST", f"{job.host}/shards/{shard_index}/cancel", b"{}")
        except ReproError:
            pass

    def collect(self, shard: Shard, path: Path) -> None:
        """Download a completed shard's records to the local path."""
        job = self._jobs.pop(shard.shard_index, None)
        if job is None:
            raise ReproError(
                f"shard {shard.shard_index} was never dispatched"
            )
        data = self._request_raw(
            "GET", f"{job.host}/shards/{shard.shard_index}/records")
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_bytes(data)

    def close(self) -> None:
        """Cancel whatever is still in flight."""
        for index in sorted(self._jobs):
            self.stop(index)

    def _request(
        self, method: str, url: str, body: Optional[bytes] = None
    ) -> dict:
        data = self._request_raw(method, url, body)
        try:
            document = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"worker {url}: bad response: {exc}")
        if not isinstance(document, dict):
            raise ReproError(f"worker {url}: bad response shape")
        return document

    def _request_raw(
        self, method: str, url: str, body: Optional[bytes] = None
    ) -> bytes:
        """One logical request: attempts paced by the retry policy.

        An HTTP error status is the worker *answering* (refusing a bad
        dispatch, say) — retrying would resend the same doomed request,
        so only transport-level failures (unreachable host, dropped
        connection, injected ``serve.shards.request`` faults) retry.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                fire(
                    "serve.shards.request",
                    method=method, url=url, attempt=attempt,
                )
                return self._request_once(method, url, body)
            except _TransportUnreachable as exc:
                if not self.retry.allows(attempt):
                    raise ReproError(str(exc)) from None
            except OSError as exc:
                # Injected faults at the site surface here (reset and
                # IO errors alike); treat them exactly like wire
                # trouble.
                if not self.retry.allows(attempt):
                    raise ReproError(f"worker {url}: {exc}") from None
            backoff = self.retry.backoff(attempt, token=url)
            if backoff > 0:
                time.sleep(backoff)

    def _request_once(
        self, method: str, url: str, body: Optional[bytes]
    ) -> bytes:
        headers = (
            {"Content-Type": "application/json"}
            if body is not None else {}
        )
        request = urllib.request.Request(
            url, data=body, method=method, headers=headers)
        try:
            with urllib.request.urlopen(
                request, timeout=self.request_timeout
            ) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get(
                    "error", "")
            except Exception:
                detail = ""
            raise ReproError(
                f"worker {url}: HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            )
        except (urllib.error.URLError, OSError) as exc:
            raise _TransportUnreachable(
                f"worker {url} unreachable: {exc}"
            )


def _normalize_host(host: str) -> str:
    host = host.strip().rstrip("/")
    if not host:
        raise ReproError("empty worker host")
    if "://" not in host:
        host = f"http://{host}"
    return host
