"""RFC 6811 origin-validation as a queryable service.

Routers normally validate locally from the table they learned over
RTR; the paper's local cache (Figure 1) can just as well answer the
question directly — "is (prefix, origin AS) valid under the current
ROA set?" — for monitoring consoles, looking-glass tooling, or
software routers that prefer an RPC to a full table.  This module is
that answerer: an immutable, radix-indexed VRP snapshot
(:mod:`repro.netbase.radix` per address family) with single-shot and
batch lookup APIs.  :mod:`repro.serve.http` puts it on the wire.

Beyond the three RFC 6811 states, results carry a *reason* telling the
operator **why** a route is invalid — announced length beyond every
matching ROA's maxLength (``invalid-length``, the paper's §4 loose-ROA
territory) versus no covering ROA authorizing that origin at all
(``invalid-origin``, the forged-origin signature).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bgp.origin_validation import ValidationState, VrpIndex
from ..netbase import Prefix
from ..rpki.vrp import Vrp
from .metrics import ServeMetrics, ensure_metrics

__all__ = ["ValidityResult", "QueryService"]

#: reason strings, fixed vocabulary for the JSON API
REASON_MATCHED = "matched"
REASON_INVALID_LENGTH = "invalid-length"
REASON_INVALID_ORIGIN = "invalid-origin"
REASON_NOT_FOUND = "not-found"


@dataclass(frozen=True)
class ValidityResult:
    """The full story of one origin-validation decision."""

    prefix: Prefix
    asn: int
    state: ValidationState
    reason: str
    matched: Optional[Vrp]          # the VRP that made it valid
    covering: Tuple[Vrp, ...]       # every covering VRP consulted

    def to_json(self) -> Dict[str, object]:
        return {
            "prefix": str(self.prefix),
            "asn": self.asn,
            "state": self.state.value,
            "reason": self.reason,
            "matched": str(self.matched) if self.matched else None,
            "covering": [str(vrp) for vrp in self.covering],
        }


class QueryService:
    """Answer ``validity(asn, prefix)`` against a VRP snapshot.

    The snapshot is the router-side index itself — a
    :class:`~repro.bgp.origin_validation.VrpIndex` (per-family radix
    trees of VRP buckets, duplicates dropped) — built once per
    :meth:`reload` and never mutated in place, so lookups need no
    locking: a reload builds a fresh index and swaps the reference,
    leaving in-flight queries on the old (still consistent) snapshot.
    """

    def __init__(
        self,
        vrps: Iterable[Vrp] = (),
        *,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        self.metrics = ensure_metrics(metrics)
        self._index = VrpIndex()
        self.serial: Optional[int] = None
        self.reload(vrps)

    def __len__(self) -> int:
        return len(self._index)

    def reload(self, vrps: Iterable[Vrp], *, serial: Optional[int] = None) -> int:
        """Atomically replace the snapshot; returns the VRP count."""
        self._index = VrpIndex(vrps)
        self.serial = serial
        return len(self._index)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def validity(self, asn: int, prefix: Prefix) -> ValidityResult:
        """RFC 6811 validation of one (origin AS, prefix) pair."""
        started = time.perf_counter()
        result = self._decide(asn, prefix, self._index)
        self.metrics.observe_query(time.perf_counter() - started)
        return result

    def validity_batch(
        self, queries: Sequence[Tuple[int, Prefix]]
    ) -> List[ValidityResult]:
        """In-process batch API: one timing observation per query, one
        snapshot for the whole batch (results are mutually consistent
        even if a reload lands mid-flight)."""
        index = self._index
        started = time.perf_counter()
        results = [self._decide(asn, prefix, index) for asn, prefix in queries]
        elapsed = time.perf_counter() - started
        if queries:
            self.metrics.observe_queries(elapsed / len(queries), len(queries))
        self.metrics.increment("batch_queries")
        return results

    def _decide(
        self, asn: int, prefix: Prefix, index: VrpIndex
    ) -> ValidityResult:
        covering = list(index.covering(prefix))
        if not covering:
            return ValidityResult(prefix, asn, ValidationState.NOTFOUND,
                                  REASON_NOT_FOUND, None, ())
        origin_seen = False
        for vrp in covering:
            if vrp.asn == asn:
                if prefix.length <= vrp.max_length:
                    return ValidityResult(prefix, asn, ValidationState.VALID,
                                          REASON_MATCHED, vrp, tuple(covering))
                origin_seen = True
        reason = REASON_INVALID_LENGTH if origin_seen else REASON_INVALID_ORIGIN
        return ValidityResult(prefix, asn, ValidationState.INVALID,
                              reason, None, tuple(covering))
