"""Asyncio RTR distribution: one cache, thousands of router sessions.

:class:`repro.rtr.cache.RtrCacheServer` spends a thread per router and
re-encodes the table per Reset Query; neither survives contact with
the paper's deployment story (§6: the local cache must be cheap on
general-purpose hardware).  This server is the scaling rewrite:

* **One event loop, zero per-client threads.**  Each router session is
  a coroutine multiplexed by asyncio; concurrency is bounded by file
  descriptors, not thread stacks.
* **Encode once, fan out by reference.**  Responses come from the
  per-serial :class:`~repro.serve.frames.FrameCache`; serving the same
  serial to 1,000 routers performs one table encode and 1,000
  zero-copy buffer writes.
* **Backpressure-aware.**  After writing a data frame the handler
  awaits ``drain()``, so one slow router throttles only its own
  coroutine while others stream at full speed.  Serial Notify
  broadcasts are 12-byte fire-and-forget writes that never block the
  update path on a congested peer.
* **Serial Notify on update.**  :meth:`AsyncRtrServer.update` installs
  a new VRP set through :class:`~repro.rtr.session.CacheState` (no-op
  updates are coalesced there) and broadcasts the cached notify frame.

:class:`ThreadedRtrServer` wraps the async server in a dedicated
event-loop thread with the same synchronous surface as the legacy
server (``start/update/close/host/port/state``), so
:class:`repro.core.pipeline.LocalCache` and synchronous tests drive it
unchanged.  :class:`AsyncRtrClient` is the matching coroutine client
used by the fan-out benchmark and tests.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable, Optional, Set

from ..faults import fire_async
from ..netbase.errors import ReproError
from ..rpki.vrp import Vrp
from ..rtr.pdu import (
    CacheResetPdu,
    CacheResponsePdu,
    EndOfDataPdu,
    ErrorReportPdu,
    FLAG_ANNOUNCE,
    Ipv4PrefixPdu,
    Ipv6PrefixPdu,
    Pdu,
    PduBuffer,
    PduError,
    ResetQueryPdu,
    SerialNotifyPdu,
    SerialQueryPdu,
    decode_stream,
    encode_pdu,
    pdu_to_vrp,
)
from ..rtr.session import CacheState, VrpDiff
from .frames import FrameCache
from .metrics import ServeMetrics, ensure_metrics

__all__ = ["AsyncRtrServer", "ThreadedRtrServer", "AsyncRtrClient"]

_RECV_CHUNK = 65536


class AsyncRtrServer:
    """Asyncio RTR cache server over a :class:`CacheState`.

    Pure-async API — create, ``await start()``, ``await update(...)``
    as data refreshes, ``await close()``.  All methods must run on the
    loop that called :meth:`start` (use :class:`ThreadedRtrServer`
    from synchronous code).

    Production hardening knobs: ``max_clients`` caps concurrent
    sessions (excess connections are closed on accept and counted as
    ``requests_shed``); ``client_deadline`` bounds every post-write
    ``drain()`` — a consumer that cannot absorb a frame within the
    deadline is disconnected (``clients_evicted``) instead of pinning
    an unbounded write buffer in server memory.
    """

    def __init__(
        self,
        initial: Iterable[Vrp] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        session_id: int = 1,
        history_limit: int = 16,
        metrics: Optional[ServeMetrics] = None,
        max_clients: Optional[int] = None,
        client_deadline: Optional[float] = None,
    ) -> None:
        if max_clients is not None and max_clients < 1:
            raise ReproError("max_clients must be positive")
        if client_deadline is not None and client_deadline <= 0:
            raise ReproError("client_deadline must be positive")
        self.max_clients = max_clients
        self.client_deadline = client_deadline
        self.state = CacheState(session_id, history_limit=history_limit)
        self.metrics = ensure_metrics(metrics)
        self.frames = FrameCache(self.state, metrics=self.metrics)
        self._requested_host = host
        self._requested_port = port
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        if initial:
            self.state.update(initial)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "AsyncRtrServer":
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._requested_host,
            self._requested_port,
        )
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self

    async def close(self) -> None:
        # Close client writers BEFORE awaiting wait_closed(): since
        # Python 3.12.1 wait_closed() also waits for connection
        # handlers, which sit in reader.read() until their transport
        # closes — the old order deadlocks with any router connected.
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "AsyncRtrServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Data updates
    # ------------------------------------------------------------------

    async def update(self, vrps: Iterable[Vrp]) -> VrpDiff:
        """Install a new VRP set; broadcast Serial Notify if it changed."""
        diff = self.state.update(vrps)
        if not diff.empty:
            notify = self.frames.notify()
            for writer in list(self._writers):
                if writer.is_closing():
                    continue
                # 12 bytes, fire-and-forget: a congested router delays
                # its own notify, never the update path or its peers.
                writer.write(notify)
                self.metrics.increment("notifies_sent")
                self.metrics.increment("bytes_sent", len(notify))
                self.metrics.increment("pdus_sent")
        return diff

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if (
            self.max_clients is not None
            and len(self._writers) >= self.max_clients
        ):
            # Shed at accept: a full house must not grow its memory
            # footprint per extra router; the router retries later.
            self.metrics.increment("requests_shed")
            writer.close()
            return
        self._writers.add(writer)
        self.metrics.increment("connections_opened")
        buffer = b""
        try:
            await fire_async("serve.rtr.accept")
            while True:
                chunk = await reader.read(_RECV_CHUNK)
                if not chunk:
                    break
                buffer += chunk
                try:
                    pdus, buffer = decode_stream(buffer)
                except PduError as exc:
                    await self._send(writer, encode_pdu(ErrorReportPdu(
                        ErrorReportPdu.CORRUPT_DATA, text=str(exc))), 1)
                    break
                for pdu in pdus:
                    await self._dispatch(writer, pdu)
        except (OSError, asyncio.CancelledError):
            # ConnectionError and injected IO faults alike end the
            # session, never the server.
            pass
        finally:
            self._writers.discard(writer)
            self.metrics.increment("connections_closed")
            writer.close()

    async def _dispatch(self, writer: asyncio.StreamWriter, pdu: Pdu) -> None:
        if isinstance(pdu, ResetQueryPdu):
            frame, pdu_count = self.frames.full_table()
            self.metrics.increment("reset_queries")
            await self._send(writer, frame, pdu_count)
        elif isinstance(pdu, SerialQueryPdu):
            self.metrics.increment("serial_queries")
            if pdu.session_id != self.state.session_id:
                self.metrics.increment("cache_resets_sent")
                await self._send(writer, encode_pdu(CacheResetPdu()), 1)
                return
            cached = self.frames.diff(pdu.serial)
            if cached is None:
                self.metrics.increment("cache_resets_sent")
                await self._send(writer, encode_pdu(CacheResetPdu()), 1)
                return
            frame, pdu_count = cached
            await self._send(writer, frame, pdu_count)
        else:
            await self._send(writer, encode_pdu(ErrorReportPdu(
                ErrorReportPdu.UNSUPPORTED_PDU,
                text=f"cache cannot handle {type(pdu).__name__}")), 1)

    async def _send(
        self, writer: asyncio.StreamWriter, frame: bytes, pdu_count: int
    ) -> None:
        """One frame, one write, then drain: per-client backpressure.

        With ``client_deadline`` set the drain is bounded: a consumer
        that cannot take the frame in time is evicted (its connection
        closed, the handler unwinding via the read side) so slow
        routers bound, rather than grow, server memory.
        """
        if writer.is_closing():
            return
        await fire_async("serve.rtr.send")
        writer.write(frame)
        self.metrics.increment("bytes_sent", len(frame))
        self.metrics.increment("pdus_sent", pdu_count)
        try:
            if self.client_deadline is not None:
                await asyncio.wait_for(writer.drain(), self.client_deadline)
            else:
                await writer.drain()
        except asyncio.TimeoutError:
            self.metrics.increment("clients_evicted")
            writer.close()
        except ConnectionError:
            pass


class ThreadedRtrServer:
    """:class:`AsyncRtrServer` behind a synchronous facade.

    Runs a private event loop in a daemon thread and proxies
    ``start/update/close`` through ``run_coroutine_threadsafe``.  The
    surface matches the legacy ``RtrCacheServer`` closely enough that
    :class:`~repro.core.pipeline.LocalCache` and the synchronous
    :class:`~repro.rtr.client.RtrClient` interoperate unchanged.
    """

    def __init__(
        self,
        initial: Iterable[Vrp] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        session_id: int = 1,
        history_limit: int = 16,
        metrics: Optional[ServeMetrics] = None,
        max_clients: Optional[int] = None,
        client_deadline: Optional[float] = None,
    ) -> None:
        self._async = AsyncRtrServer(
            initial,
            host=host,
            port=port,
            session_id=session_id,
            history_limit=history_limit,
            metrics=metrics,
            max_clients=max_clients,
            client_deadline=client_deadline,
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def state(self) -> CacheState:
        return self._async.state

    @property
    def metrics(self) -> ServeMetrics:
        return self._async.metrics

    @property
    def frames(self) -> FrameCache:
        return self._async.frames

    @property
    def host(self) -> str:
        return self._async.host

    @property
    def port(self) -> int:
        return self._async.port

    def start(self) -> "ThreadedRtrServer":
        ready = threading.Event()
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            assert self._loop is not None
            asyncio.set_event_loop(self._loop)
            self._loop.call_soon(ready.set)
            self._loop.run_forever()

        self._thread = threading.Thread(
            target=run, name="rtr-async-loop", daemon=True)
        self._thread.start()
        ready.wait()
        try:
            self._call(self._async.start())
        except BaseException:
            # Don't leak the loop thread when the bind fails.
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
            self._loop.close()
            self._loop = None
            self._thread = None
            raise
        return self

    def update(self, vrps: Iterable[Vrp]) -> VrpDiff:
        return self._call(self._async.update(list(vrps)))

    def close(self) -> None:
        if self._loop is None:
            return
        self._call(self._async.close())
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                # Closing the loop under a still-running thread would
                # corrupt it; surface the wedge instead of pretending
                # the server stopped.
                raise ReproError(
                    "rtr-async-loop thread did not stop within 5s"
                )
        self._loop.close()
        self._loop = None
        self._thread = None

    def _call(self, coro):  # type: ignore[no-untyped-def]
        assert self._loop is not None, "server not started"
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def __enter__(self) -> "ThreadedRtrServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncRtrClient:
    """Coroutine RTR router client (the async twin of ``RtrClient``).

    The fan-out benchmark runs hundreds of these on one loop; each
    holds just a reader/writer pair and its VRP set.
    """

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._vrps: set[Vrp] = set()
        self._buffer = PduBuffer()
        self.session_id: Optional[int] = None
        self.serial: Optional[int] = None

    @property
    def vrps(self) -> frozenset[Vrp]:
        return frozenset(self._vrps)

    async def connect(self, host: str, port: int) -> "AsyncRtrClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "AsyncRtrClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    async def sync(self) -> int:
        """Bring the table up to date; returns PDUs processed."""
        assert self._writer is not None, "not connected"
        if self.serial is None or self.session_id is None:
            return await self._reset_sync()
        self._writer.write(encode_pdu(
            SerialQueryPdu(self.session_id, self.serial)))
        first = await self._recv_response_header()
        if isinstance(first, CacheResetPdu):
            return await self._reset_sync()
        if not isinstance(first, CacheResponsePdu):
            raise ReproError(f"expected Cache Response, got {first}")
        return 1 + await self._consume_data(first.session_id)

    async def _reset_sync(self) -> int:
        assert self._writer is not None
        self._writer.write(encode_pdu(ResetQueryPdu()))
        first = await self._recv_response_header()
        if not isinstance(first, CacheResponsePdu):
            raise ReproError(f"expected Cache Response, got {first}")
        self._vrps.clear()
        return 1 + await self._consume_data(first.session_id)

    async def _recv_response_header(self) -> Pdu:
        while True:
            pdu = await self._recv_pdu()
            if not isinstance(pdu, SerialNotifyPdu):
                return pdu

    async def _consume_data(self, session_id: int) -> int:
        processed = 0
        while True:
            pdu = await self._recv_pdu()
            processed += 1
            if isinstance(pdu, (Ipv4PrefixPdu, Ipv6PrefixPdu)):
                vrp = pdu_to_vrp(pdu)
                if pdu.flags & FLAG_ANNOUNCE:
                    self._vrps.add(vrp)
                else:
                    self._vrps.discard(vrp)
            elif isinstance(pdu, EndOfDataPdu):
                self.session_id = session_id
                self.serial = pdu.serial
                return processed
            elif isinstance(pdu, ErrorReportPdu):
                raise ReproError(
                    f"cache reported error {pdu.error_code}: {pdu.text}")
            elif isinstance(pdu, SerialNotifyPdu):
                continue  # a notify racing the data stream is harmless
            else:
                raise ReproError(f"unexpected PDU {pdu}")

    async def wait_for_notify(self, timeout: float = 5.0) -> SerialNotifyPdu:
        """Wait until the cache signals new data with Serial Notify.

        A timeout cannot lose bytes: StreamReader.read pops its buffer
        synchronously after the wakeup await, so cancellation mid-wait
        leaves any arrived bytes inside the stream for the next call.
        """
        async def _wait() -> SerialNotifyPdu:
            while True:
                pdu = await self._recv_pdu()
                if isinstance(pdu, SerialNotifyPdu):
                    return pdu

        return await asyncio.wait_for(_wait(), timeout)

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    async def _recv_pdu(self) -> Pdu:
        assert self._reader is not None, "not connected"
        while True:
            pdu = self._buffer.next()
            if pdu is not None:
                return pdu
            chunk = await self._reader.read(_RECV_CHUNK)
            if not chunk:
                raise ReproError("cache closed the connection")
            self._buffer.feed(chunk)
