"""A minimal HTTP/1.1 JSON front end for the query service.

Just enough HTTP to put :class:`~repro.serve.query.QueryService` on a
socket without pulling in a web framework: request-line + header
parsing over asyncio streams, keep-alive, Content-Length bodies.

Endpoints:

* ``GET /validity?asn=65000&prefix=10.0.0.0/24`` — one RFC 6811
  decision as JSON (state, reason, matched VRP, covering VRPs).
* ``POST /validity`` — batch: ``{"queries": [{"asn": ..., "prefix":
  ...}, ...]}`` in, ``{"results": [...]}`` out.
* ``GET /metrics`` — the shared :class:`ServeMetrics` snapshot as
  JSON; ``GET /metrics?format=prometheus`` serves the same registry
  in the Prometheus text exposition format instead.
* ``GET /status`` — VRP count and snapshot serial.
* ``GET /experiments`` — live + archived experiment runs known to the
  attached :class:`~repro.results.live.RunRegistry` (summaries).
* ``GET /experiments/<run>`` — one run's streaming per-cell stats,
  updated record by record while the run executes (per-shard progress
  included for sharded runs).
* ``GET /experiments/<run>/ci`` — per-cell *bootstrap CIs* for a run
  archived in the attached
  :class:`~repro.results.store.ResultsStore`, exactly
  :func:`~repro.results.store.run_ci_document` of the run's bytes.
* ``GET /diff?a=<run>&b=<run>`` — deterministic run-to-run
  comparison (:func:`~repro.results.store.run_diff_document`).
* ``GET /healthz`` / ``GET /readyz`` — liveness and readiness (both
  flip to 503 while the server drains; see :class:`HttpServerBase`).

Malformed input gets a 400 with a JSON error body; unknown paths 404.

:class:`HttpServerBase` carries the production hardening every HTTP
front end in the serve tier shares — connection caps with 503 load
shedding, keep-alive idle timeouts, graceful drain, the health
endpoints — so :class:`QueryHttpServer` here and the shard worker
server in :mod:`repro.serve.shards` subclass it and implement only
``_route``.  See ``docs/robustness.md``.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from ..faults import fire_async
from ..netbase import Prefix
from ..netbase.errors import ReproError
from .metrics import ServeMetrics, ensure_metrics
from .query import QueryService

if TYPE_CHECKING:  # pragma: no cover
    from ..results.live import RunRegistry
    from ..results.store import ResultsStore

__all__ = [
    "HttpRequestError",
    "HttpServerBase",
    "QueryHttpServer",
    "TextPayload",
    "read_http_request",
    "write_http_response",
]

_MAX_HEADER_BYTES = 16384
_MAX_BODY_BYTES = 4 << 20
#: Largest POST /validity batch accepted in one request.  Bigger
#: batches also get offloaded; the cap just bounds per-request memory.
_MAX_BATCH_QUERIES = 100_000
#: Batches at least this large run in the default executor so the
#: event loop keeps serving RTR sessions and notifies meanwhile (the
#: snapshot is immutable, so cross-thread reads are safe).
_EXECUTOR_BATCH_THRESHOLD = 512


class HttpRequestError(ReproError):
    """Client-side error: reported as a 400 response, not a crash."""


class TextPayload:
    """A non-JSON response body; :func:`write_http_response` sends its
    ``text`` verbatim under its ``content_type``."""

    __slots__ = ("content_type", "text")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


#: Content type Prometheus scrapers expect for the text exposition.
_PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _UnknownRun(ReproError):
    """A /diff side names a run the attached store does not hold."""


def _canonical_json(document: dict) -> str:
    """Sorted keys, no whitespace, newline-terminated: the same
    document is the same bytes in every process — and the /ci and
    /diff bodies are exactly ``repro-roa jobs diff`` stdout."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ) + "\n"


async def read_http_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, str, Dict[str, str], bytes]]:
    """Read one HTTP/1.1 request from an asyncio stream.

    Returns ``(method, path, version, headers, body)`` — method and
    version uppercased, header names lowercased — or ``None`` on a
    clean EOF before any bytes of a request.  Malformed or oversized
    input raises :class:`HttpRequestError`, which servers report as a
    400.  This is the request side of every HTTP front end in the
    serve tier (query service, shard workers).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError:
        return None
    except asyncio.LimitOverrunError:
        # Head exceeded the StreamReader's own limit before our
        # size check could run; same answer either way.
        raise HttpRequestError("request head too large")
    if len(head) > _MAX_HEADER_BYTES:
        raise HttpRequestError("request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, path, version = lines[0].split(" ", 2)
    except ValueError:
        raise HttpRequestError(f"malformed request line {lines[0]!r}")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    body = b""
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpRequestError(f"bad Content-Length {raw_length!r}")
    if length < 0:
        raise HttpRequestError(f"bad Content-Length {raw_length!r}")
    if length:
        if length > _MAX_BODY_BYTES:
            raise HttpRequestError("request body too large")
        body = await reader.readexactly(length)
    return method.upper(), path, version.strip().upper(), headers, body


async def write_http_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool,
) -> None:
    """Write one HTTP/1.1 response and drain the stream.

    ``payload`` is either a JSON-serializable dict (sent as
    ``application/json``) or a :class:`TextPayload` (sent verbatim
    under its own content type).
    """
    reason = {200: "OK", 201: "Created", 400: "Bad Request",
              404: "Not Found", 405: "Method Not Allowed",
              409: "Conflict",
              503: "Service Unavailable"}.get(status, "OK")
    if isinstance(payload, TextPayload):
        content_type = payload.content_type
        body = payload.text.encode("utf-8")
    else:
        content_type = "application/json"
        body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()


class HttpServerBase:
    """The hardened asyncio HTTP server every serve-tier front end
    shares; subclasses implement ``_route`` only.

    What the base owns:

    * **Connection cap + load shedding** — with ``max_clients`` set, a
      connection beyond the cap gets an immediate 503 and close
      (counted as ``requests_shed``) instead of growing server state.
    * **Keep-alive idle timeout** — with ``idle_timeout`` set, a
      keep-alive connection that sends nothing for that long is
      reaped, so idle peers can't pin file descriptors forever.
    * **Graceful drain** — :meth:`drain` flips the server to draining
      (health endpoints answer 503, other requests are shed, new
      keep-alives are refused), waits for in-flight requests to
      finish, and records the elapsed time in the ``drain_seconds``
      gauge.  The listener deliberately stays open so load balancers
      observe the flip; call :meth:`close` afterwards.
    * **Health endpoints** — ``GET /healthz`` (liveness: 200 until
      draining) and ``GET /readyz`` (readiness: also 503 while at the
      connection cap).
    * The fault-injection sites ``serve.http.accept`` and
      ``serve.http.request`` (see :mod:`repro.faults`).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[ServeMetrics] = None,
        max_clients: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        drain_timeout: Optional[float] = None,
    ) -> None:
        if max_clients is not None and max_clients < 1:
            raise ReproError("max_clients must be positive")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ReproError("idle_timeout must be positive")
        if drain_timeout is not None and drain_timeout <= 0:
            raise ReproError("drain_timeout must be positive")
        self.metrics = ensure_metrics(metrics)
        self.max_clients = max_clients
        self.idle_timeout = idle_timeout
        self.drain_timeout = drain_timeout
        self._requested = (host, port)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self._active_requests = 0
        self._draining = False

    @property
    def draining(self) -> bool:
        """Is the server refusing new work pending :meth:`close`?"""
        return self._draining

    async def start(self) -> "HttpServerBase":
        self._server = await asyncio.start_server(
            self._handle_connection, *self._requested)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self

    async def drain(self, timeout: Optional[float] = None) -> float:
        """Quiesce: shed new work, wait out in-flight requests.

        Returns the seconds it took (bounded by ``timeout``, default
        the constructor's ``drain_timeout``) and records it in the
        ``drain_seconds`` gauge.  The listener stays open — health
        probes must observe the 503 flip — so follow with ``close()``.
        """
        if timeout is None:
            timeout = self.drain_timeout
        self._draining = True
        start = time.monotonic()
        while self._active_requests > 0:
            if timeout is not None and time.monotonic() - start >= timeout:
                break
            await asyncio.sleep(0.005)
        elapsed = time.monotonic() - start
        self.metrics.drain_seconds.set(elapsed)
        return elapsed

    async def close(self) -> None:
        # Force idle keep-alive connections closed BEFORE awaiting
        # wait_closed(): since Python 3.12.1 it waits for connection
        # handlers, which otherwise sit in readuntil() forever.
        if self._server is not None:
            self._server.close()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "HttpServerBase":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if (
            self.max_clients is not None
            and len(self._writers) >= self.max_clients
        ):
            self.metrics.increment("requests_shed")
            try:
                await write_http_response(
                    writer, 503,
                    {"error": "server at connection capacity"}, False)
            except OSError:
                pass
            writer.close()
            return
        self._writers.add(writer)
        try:
            await fire_async("serve.http.accept")
            while True:
                try:
                    if self.idle_timeout is not None:
                        request = await asyncio.wait_for(
                            read_http_request(reader), self.idle_timeout)
                    else:
                        request = await read_http_request(reader)
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection reaped
                except HttpRequestError as exc:
                    self.metrics.increment("http_errors")
                    await write_http_response(
                        writer, 400, {"error": str(exc)}, False)
                    break
                if request is None:
                    break
                method, path, version, headers, body = request
                self.metrics.increment("http_requests")
                # Header values are case-insensitive (RFC 9110), and
                # HTTP/1.0 defaults to close rather than keep-alive.
                connection = headers.get("connection", "").lower()
                if version == "HTTP/1.0":
                    keep_alive = connection == "keep-alive"
                else:
                    keep_alive = connection != "close"
                if self._draining:
                    keep_alive = False
                try:
                    status, payload = await self._respond(
                        method, path, body)
                except HttpRequestError as exc:
                    self.metrics.increment("http_errors")
                    status, payload = 400, {"error": str(exc)}
                await write_http_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (OSError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            # ConnectionError and injected IO faults alike end this
            # connection, never the server.
            pass
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _respond(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object]:
        """Health checks, drain shedding, then the subclass router."""
        bare = path.split("?", 1)[0]
        if bare in ("/healthz", "/readyz"):
            return self._health(method, bare)
        if self._draining:
            self.metrics.increment("requests_shed")
            return 503, {"error": "server is draining"}
        await fire_async("serve.http.request", path=bare)
        self._active_requests += 1
        try:
            return await self._route(method, path, body)
        finally:
            self._active_requests -= 1

    def _health(self, method: str, path: str) -> Tuple[int, object]:
        if method != "GET":
            return 405, {"error": f"{method} not allowed on {path}"}
        if self._draining:
            return 503, {"status": "draining"}
        if path == "/readyz" and (
            self.max_clients is not None
            and len(self._writers) >= self.max_clients
        ):
            return 503, {"status": "saturated"}
        return 200, {"status": "ok" if path == "/healthz" else "ready"}

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, object]:
        raise NotImplementedError  # pragma: no cover — subclass duty


class QueryHttpServer(HttpServerBase):
    """Serve origin-validation queries — and live experiment results —
    over HTTP/JSON.

    ``runs`` is the :class:`~repro.results.live.RunRegistry` behind
    the ``/experiments`` endpoints; omit it and the server answers
    them from a fresh, empty registry (publish into ``server.runs``
    to make runs appear).  ``store`` is the
    :class:`~repro.results.store.ResultsStore` behind
    ``/experiments/<run>/ci`` and ``/diff``; without one those
    endpoints answer 404 (aggregation needs the run's durable bytes,
    not just live statistics).  Hardening knobs (``max_clients``,
    ``idle_timeout``, ``drain_timeout``) come from
    :class:`HttpServerBase`.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[ServeMetrics] = None,
        runs: Optional["RunRegistry"] = None,
        store: Optional["ResultsStore"] = None,
        max_clients: Optional[int] = None,
        idle_timeout: Optional[float] = None,
        drain_timeout: Optional[float] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            metrics=metrics if metrics is not None else service.metrics,
            max_clients=max_clients,
            idle_timeout=idle_timeout,
            drain_timeout=drain_timeout,
        )
        self.service = service
        if runs is None:
            # Imported lazily: the registry rides on repro.results /
            # repro.exper, which pure query serving should not load.
            from ..results.live import RunRegistry

            runs = RunRegistry()
        self.runs = runs
        self.store = store

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        url = urlsplit(path)
        if url.path == "/validity" and method == "GET":
            return 200, self._single_query(parse_qs(url.query))
        if url.path == "/validity" and method == "POST":
            return 200, await self._batch_query(body)
        if url.path == "/metrics" and method == "GET":
            fmt = (parse_qs(url.query).get("format") or ["json"])[0]
            if fmt == "prometheus":
                return 200, TextPayload(
                    self.metrics.render_prometheus(),
                    _PROMETHEUS_CONTENT_TYPE,
                )
            if fmt != "json":
                raise HttpRequestError(
                    f"unknown metrics format {fmt!r}; "
                    f"expected json or prometheus"
                )
            return 200, self.metrics.snapshot()
        if url.path == "/status" and method == "GET":
            return 200, {
                "vrps": len(self.service),
                "serial": self.service.serial,
            }
        if url.path == "/experiments" or url.path.startswith(
            "/experiments/"
        ):
            if method != "GET":
                return 405, {
                    "error": f"{method} not allowed on {url.path}"
                }
            return await self._experiments(url.path)
        if url.path == "/diff":
            if method != "GET":
                return 405, {"error": f"{method} not allowed on /diff"}
            return await self._diff(parse_qs(url.query))
        if url.path in ("/validity", "/metrics", "/status"):
            return 405, {"error": f"{method} not allowed on {url.path}"}
        return 404, {"error": f"no such endpoint {url.path}"}

    async def _experiments(
        self, path: str
    ) -> Tuple[int, Dict[str, object]]:
        """The live-results endpoints, backed by the run registry."""
        self.metrics.increment("experiment_requests")
        if path == "/experiments":
            return 200, {"runs": self.runs.list_runs()}
        rest = path[len("/experiments/"):]
        if rest.endswith("/ci"):
            return await self._experiment_ci(unquote(rest[: -len("/ci")]))
        run_id = unquote(rest)
        snapshot = self.runs.snapshot(run_id)
        if snapshot is None:
            return 404, {"error": f"no experiment run named {run_id!r}"}
        return 200, snapshot

    async def _experiment_ci(self, run_id: str) -> Tuple[int, object]:
        """``GET /experiments/<run>/ci``: bootstrap CIs of stored bytes."""
        if self.store is None:
            return 404, {
                "error": "no results store attached; "
                "/experiments/<run>/ci needs the run's durable bytes"
            }

        def build() -> str:
            from ..results.store import run_ci_document

            if not self.store.path(run_id).exists():
                raise FileNotFoundError(run_id)
            header, records = self.store.read(run_id)
            return _canonical_json(
                run_ci_document(run_id, header, records)
            )

        # Aggregation (bootstrap resampling) is pure CPU over immutable
        # bytes: run it off-loop so RTR sessions keep being served.
        try:
            text = await asyncio.get_running_loop().run_in_executor(
                None, build)
        except FileNotFoundError:
            return 404, {"error": f"no stored run named {run_id!r}"}
        except (ReproError, OSError) as exc:
            raise HttpRequestError(
                f"cannot aggregate run {run_id!r}: {exc}")
        return 200, TextPayload(text, "application/json")

    async def _diff(
        self, params: Dict[str, List[str]]
    ) -> Tuple[int, object]:
        """``GET /diff?a=&b=``: deterministic run-to-run comparison."""
        self.metrics.increment("experiment_requests")
        a_id = (params.get("a") or [None])[0]
        b_id = (params.get("b") or [None])[0]
        if not a_id or not b_id:
            raise HttpRequestError(
                "both 'a' and 'b' run ids are required")
        if self.store is None:
            return 404, {
                "error": "no results store attached; "
                "/diff needs the runs' durable bytes"
            }

        def build() -> str:
            from ..results.store import run_diff_document

            sides = []
            for run_id in (a_id, b_id):
                if not self.store.path(run_id).exists():
                    raise _UnknownRun(
                        f"no stored run named {run_id!r}")
                sides.append(self.store.read(run_id))
            (a_header, a_records), (b_header, b_records) = sides
            return _canonical_json(run_diff_document(
                a_id, a_header, a_records,
                b_id, b_header, b_records,
            ))

        try:
            text = await asyncio.get_running_loop().run_in_executor(
                None, build)
        except _UnknownRun as exc:
            return 404, {"error": str(exc)}
        except (ReproError, OSError) as exc:
            raise HttpRequestError(
                f"cannot diff {a_id!r} against {b_id!r}: {exc}")
        return 200, TextPayload(text, "application/json")

    def _single_query(self, params: Dict[str, List[str]]) -> Dict[str, object]:
        asn, prefix = _parse_pair(
            (params.get("asn") or [None])[0],
            (params.get("prefix") or [None])[0],
        )
        return self.service.validity(asn, prefix).to_json()

    async def _batch_query(self, body: bytes) -> Dict[str, object]:
        try:
            document = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise HttpRequestError(f"invalid JSON body: {exc}")
        queries = document.get("queries")
        if not isinstance(queries, list):
            raise HttpRequestError('body must be {"queries": [...]}')
        if len(queries) > _MAX_BATCH_QUERIES:
            raise HttpRequestError(
                f"batch of {len(queries)} exceeds the "
                f"{_MAX_BATCH_QUERIES}-query limit")
        pairs = [
            _parse_pair(entry.get("asn"), entry.get("prefix"))
            if isinstance(entry, dict)
            else _parse_pair(None, None)
            for entry in queries
        ]
        if len(pairs) >= _EXECUTOR_BATCH_THRESHOLD:
            # Don't stall RTR sessions sharing this loop: the lookup
            # walk is pure CPU over an immutable snapshot, so it can
            # run on a worker thread.
            results = await asyncio.get_running_loop().run_in_executor(
                None, self.service.validity_batch, pairs)
        else:
            results = self.service.validity_batch(pairs)
        return {"results": [result.to_json() for result in results]}


def _parse_pair(asn: object, prefix: object) -> Tuple[int, Prefix]:
    if asn is None or prefix is None:
        raise HttpRequestError("both 'asn' and 'prefix' are required")
    try:
        asn_value = int(str(asn).upper().removeprefix("AS"))
    except ValueError:
        raise HttpRequestError(f"bad ASN {asn!r}")
    try:
        prefix_value = Prefix.parse(str(prefix))
    except ReproError as exc:
        raise HttpRequestError(f"bad prefix {prefix!r}: {exc}")
    return asn_value, prefix_value
