"""Operational counters for the serving tier.

The paper's deployment argument (§6) is quantitative — operators adopt
the local cache only if its costs are visible and small — so the
serving tier measures itself: connection churn, PDU/byte volume, how
often a frame actually had to be encoded (the fan-out win), and query
latency.

Since the :mod:`repro.obs` telemetry layer landed, :class:`ServeMetrics`
is a *view* onto a :class:`~repro.obs.MetricsRegistry` (its counters
live under the ``serve.`` namespace) with its historical public API and
``snapshot()`` shape unchanged.  By default each instance gets a
private registry — two servers never share counters by accident — but
passing the process registry (``ServeMetrics(registry=obs.
get_registry())``, what ``repro-roa serve`` does) folds the serve
counters into the same registry the experiment engine and kernels
record into, so one ``GET /metrics?format=prometheus`` scrape sees the
whole process.  Everything stays standard library, cheap enough to
leave on in benchmarks, and thread-safe so the asyncio loop and
synchronous callers (e.g. :meth:`LocalCache.refresh_from_vrps` on
another thread) can share one instance.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..obs.metrics import (
    Counter,
    LatencyHistogram,
    MetricsRegistry,
)

__all__ = ["LatencyHistogram", "ServeMetrics"]


class ServeMetrics:
    """Counters shared by the RTR server, frame cache, and query service.

    Key counters:

    * ``frame_encodes``     — times a PDU frame was actually encoded.
      With the per-serial frame cache this stays flat as fan-out grows:
      100 routers Reset-Querying the same serial cost **one** encode.
    * ``frame_hits``        — frames served straight from cache.
    * ``pdus_sent`` / ``bytes_sent`` — wire volume toward routers.
    * ``queries`` — ``validity()`` calls answered (HTTP or in-process).
    * ``experiment_requests`` — ``/experiments`` endpoint hits.
    * ``records_published`` — trial records streamed into the live
      run registry by :class:`~repro.results.live.ServePublisher`.
    * ``requests_shed`` — connections/requests refused under load
      caps or during drain (503s and immediate closes).
    * ``clients_evicted`` — slow RTR consumers disconnected after
      missing their per-client write deadline.

    ``drain_seconds`` is a gauge: how long the last graceful drain
    took to quiesce in-flight requests.
    """

    _COUNTERS = (
        "connections_opened",
        "connections_closed",
        "reset_queries",
        "serial_queries",
        "cache_resets_sent",
        "notifies_sent",
        "frame_encodes",
        "frame_hits",
        "pdus_sent",
        "bytes_sent",
        "queries",
        "batch_queries",
        "http_requests",
        "http_errors",
        "experiment_requests",
        "records_published",
        "requests_shed",
        "clients_evicted",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._view = self.registry.view("serve")
        # Pre-register the known counters so snapshots always carry the
        # full set (zeros included), exactly as before the registry.
        self._counters: Dict[str, Counter] = {
            name: self._view.counter(name) for name in self._COUNTERS
        }
        self.query_latency = self._view.histogram("query_latency")
        self.drain_seconds = self._view.gauge("drain_seconds")

    def _counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = self._view.counter(name)
        return counter

    def increment(self, name: str, amount: int = 1) -> None:
        self._counter(name).inc(amount)

    def observe_query(self, seconds: float) -> None:
        self._counters["queries"].inc()
        self.query_latency.observe(seconds)

    def observe_queries(self, per_query_seconds: float, n: int) -> None:
        """Record ``n`` queries at an amortized per-query latency."""
        self._counters["queries"].inc(n)
        self.query_latency.observe_many(per_query_seconds, n)

    def __getitem__(self, name: str) -> int:
        counter = self._counters.get(name)
        return 0 if counter is None else counter.value

    @property
    def connections_active(self) -> int:
        return (self._counters["connections_opened"].value
                - self._counters["connections_closed"].value)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of every counter plus latency quantiles."""
        view: Dict[str, object] = {
            name: counter.value for name, counter in self._counters.items()
        }
        view["connections_active"] = self.connections_active
        view["query_latency"] = self.query_latency.snapshot()
        view["drain_seconds"] = self.drain_seconds.value
        return view

    def render_prometheus(self) -> str:
        """The whole backing registry in Prometheus text exposition
        format, plus the derived ``serve_connections_active`` gauge."""
        return (
            self.registry.render_prometheus()
            + "# TYPE serve_connections_active gauge\n"
            + f"serve_connections_active {self.connections_active}\n"
        )


def ensure_metrics(metrics: Optional[ServeMetrics]) -> ServeMetrics:
    """The given metrics, or a fresh private instance."""
    return metrics if metrics is not None else ServeMetrics()
