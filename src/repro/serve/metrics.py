"""Operational counters for the serving tier.

The paper's deployment argument (§6) is quantitative — operators adopt
the local cache only if its costs are visible and small — so the
serving tier measures itself: connection churn, PDU/byte volume, how
often a frame actually had to be encoded (the fan-out win), and query
latency.  Everything is standard library, cheap enough to leave on in
benchmarks, and thread-safe so the asyncio loop and synchronous
callers (e.g. :meth:`LocalCache.refresh_from_vrps` on another thread)
can share one instance.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

__all__ = ["LatencyHistogram", "ServeMetrics"]


class LatencyHistogram:
    """Power-of-two latency buckets (microseconds), with quantiles.

    Buckets cover <1us up to >=2^(buckets-2) ms-scale outliers; each
    observation lands in ``floor(log2(us)) + 1`` (0 for sub-us).  Fixed
    buckets keep ``observe`` allocation-free on the query hot path.
    """

    BUCKETS = 24  # up to ~8.4 s

    def __init__(self) -> None:
        self._counts = [0] * self.BUCKETS
        self.count = 0
        self.total_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.observe_many(seconds, 1)

    def observe_many(self, seconds: float, n: int) -> None:
        """Record ``n`` observations of the same per-item latency
        (amortized batch timing) in O(1)."""
        us = int(seconds * 1e6)
        index = us.bit_length()  # 0 -> bucket 0, 1us -> 1, 2-3us -> 2, ...
        if index >= self.BUCKETS:
            index = self.BUCKETS - 1
        self._counts[index] += n
        self.count += n
        self.total_seconds += seconds * n

    def quantile(self, q: float) -> float:
        """Upper bound (seconds) of the bucket holding quantile ``q``."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target:
                return (1 << index) / 1e6
        return (1 << (self.BUCKETS - 1)) / 1e6

    def snapshot(self) -> Dict[str, float]:
        mean = self.total_seconds / self.count if self.count else 0.0
        return {
            "count": self.count,
            "mean_us": mean * 1e6,
            "p50_us": self.quantile(0.50) * 1e6,
            "p90_us": self.quantile(0.90) * 1e6,
            "p99_us": self.quantile(0.99) * 1e6,
        }


class ServeMetrics:
    """Counters shared by the RTR server, frame cache, and query service.

    Key counters:

    * ``frame_encodes``     — times a PDU frame was actually encoded.
      With the per-serial frame cache this stays flat as fan-out grows:
      100 routers Reset-Querying the same serial cost **one** encode.
    * ``frame_hits``        — frames served straight from cache.
    * ``pdus_sent`` / ``bytes_sent`` — wire volume toward routers.
    * ``queries`` — ``validity()`` calls answered (HTTP or in-process).
    * ``experiment_requests`` — ``/experiments`` endpoint hits.
    * ``records_published`` — trial records streamed into the live
      run registry by :class:`~repro.results.live.ServePublisher`.
    """

    _COUNTERS = (
        "connections_opened",
        "connections_closed",
        "reset_queries",
        "serial_queries",
        "cache_resets_sent",
        "notifies_sent",
        "frame_encodes",
        "frame_hits",
        "pdus_sent",
        "bytes_sent",
        "queries",
        "batch_queries",
        "http_requests",
        "http_errors",
        "experiment_requests",
        "records_published",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in self._COUNTERS}
        self.query_latency = LatencyHistogram()

    def increment(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def observe_query(self, seconds: float) -> None:
        with self._lock:
            self._counters["queries"] += 1
            self.query_latency.observe(seconds)

    def observe_queries(self, per_query_seconds: float, n: int) -> None:
        """Record ``n`` queries at an amortized per-query latency."""
        with self._lock:
            self._counters["queries"] += n
            self.query_latency.observe_many(per_query_seconds, n)

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    @property
    def connections_active(self) -> int:
        with self._lock:
            return (self._counters["connections_opened"]
                    - self._counters["connections_closed"])

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready view of every counter plus latency quantiles."""
        with self._lock:
            view: Dict[str, object] = dict(self._counters)
        view["connections_active"] = self.connections_active
        view["query_latency"] = self.query_latency.snapshot()
        return view


def ensure_metrics(metrics: Optional[ServeMetrics]) -> ServeMetrics:
    """The given metrics, or a fresh private instance."""
    return metrics if metrics is not None else ServeMetrics()
