"""``repro.serve`` — the production serving tier of the local cache.

Figure 1 of the paper places a *local cache* between the global RPKI
and an AS's routers::

      RPKI repositories                      (global, cryptographic)
            |
            v
      relying-party validation   repro.rpki.scan_roas
            |
            v
      compress_roas (optional)   repro.core.compress
            |
            v
    +---------------------------------------------------------+
    |                 THE LOCAL CACHE  (this package)          |
    |                                                          |
    |  CacheState ── FrameCache ── AsyncRtrServer ──► routers  |
    |      |          (encode      (RTR, RFC 6810,   over RTR  |
    |      |           once per     thousands of               |
    |      |           serial)      sessions)                  |
    |      v                                                   |
    |  QueryService ── QueryHttpServer ──► operators, tooling  |
    |  (RFC 6811       (HTTP/JSON)         and software        |
    |   validity)                          routers             |
    |                                                          |
    |  ServeMetrics — connections, PDUs/s, frame encodes vs    |
    |  cache hits, query latency histogram                     |
    +---------------------------------------------------------+

§6 argues operators deploy the RPKI only when the cache path is cheap
at scale; this package is that argument as code.  The two outputs of
the cache are served by two cooperating components over one VRP set:

* **RTR distribution** (:mod:`repro.serve.rtr_async`).  An asyncio
  server fans the validated table out to routers.  Responses are
  pre-encoded per serial by :class:`~repro.serve.frames.FrameCache`,
  so 1,000 routers requesting serial *S* trigger one table encode and
  1,000 buffer writes; writes are backpressure-aware (``drain()`` per
  client) and every data refresh broadcasts Serial Notify.  Use
  :class:`~repro.serve.rtr_async.ThreadedRtrServer` from synchronous
  code — :meth:`repro.core.pipeline.LocalCache.serve` does.
* **Origin validation queries** (:mod:`repro.serve.query` +
  :mod:`repro.serve.http`).  A radix-indexed snapshot answers
  ``validity(asn, prefix)`` per RFC 6811 — ``valid`` / ``invalid``
  (with an ``invalid-length`` vs ``invalid-origin`` reason) /
  ``notfound`` — in-process, in batch, or over ``GET /validity``.
* **Metrics** (:mod:`repro.serve.metrics`).  Shared counters and a
  latency histogram; ``GET /metrics`` exposes them as JSON.
* **Experiment shard workers** (:mod:`repro.serve.shards`).  The
  multi-host half of the sharded experiment executor: a
  :class:`~repro.serve.shards.ShardWorkerServer` holds a topology and
  executes dispatched grid shards over HTTP, and
  :class:`~repro.serve.shards.HttpShardTransport` is the
  coordinator-side client that makes a pool of such hosts look like
  local worker processes (see :mod:`repro.exper.sharded`).

Quick start (see ``examples/serve_quickstart.py`` for the full tour)::

    from repro.serve import ThreadedRtrServer, QueryService

    with ThreadedRtrServer(vrps) as server:      # routers: RTR on server.port
        service = QueryService(vrps)             # operators: validity queries
        result = service.validity(65000, Prefix.parse("10.0.0.0/24"))

Or from the command line::

    repro-roa serve vrps.csv --rtr-port 8282 --http-port 8080
"""

from .frames import FrameCache
from .http import HttpRequestError, HttpServerBase, QueryHttpServer
from .metrics import LatencyHistogram, ServeMetrics
from .query import QueryService, ValidityResult
from .rtr_async import AsyncRtrClient, AsyncRtrServer, ThreadedRtrServer
from .shards import (
    HttpShardTransport,
    ShardWorkerServer,
    ThreadedShardWorkerServer,
)

__all__ = [
    "AsyncRtrClient",
    "AsyncRtrServer",
    "FrameCache",
    "HttpRequestError",
    "HttpServerBase",
    "HttpShardTransport",
    "LatencyHistogram",
    "QueryHttpServer",
    "QueryService",
    "ServeMetrics",
    "ShardWorkerServer",
    "ThreadedRtrServer",
    "ThreadedShardWorkerServer",
    "ValidityResult",
]
