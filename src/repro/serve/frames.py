"""Per-serial pre-encoded PDU frame caches.

The threaded toy server re-ran ``encode_pdu(vrp_to_pdu(v))`` over the
whole table for every router; at paper scale (hundreds of thousands of
VRPs, hundreds of routers) that is quadratic work for bytes that are
identical across clients.  Here each distinct response — the full-table
dump at serial *S*, the net diff from serial *A* to *B*, the Serial
Notify for *S* — is encoded **once** into an immutable ``bytes`` frame
and fanned out by reference.  A frame is also a single
``transport.write`` unit, which keeps concurrent writers (a data
stream and a racing notify) from interleaving mid-PDU.

Cache entries are keyed by serial and evicted in step with
:class:`~repro.rtr.session.CacheState` history, so memory stays
bounded by ``history_limit`` regardless of client count.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..rtr.pdu import (
    CacheResponsePdu,
    EndOfDataPdu,
    SerialNotifyPdu,
    encode_pdu,
    vrp_to_pdu,
)
from ..rtr.session import CacheState
from .metrics import ServeMetrics, ensure_metrics

__all__ = ["FrameCache"]


class FrameCache:
    """Encode-once, send-many wire frames for one :class:`CacheState`.

    All lookups are answered against the state's *current* serial; a
    concurrent update simply changes which frames get built next.  The
    cache never hands out partial frames: a frame is built completely
    before it is stored or returned.
    """

    def __init__(
        self,
        state: CacheState,
        *,
        metrics: Optional[ServeMetrics] = None,
    ) -> None:
        self.state = state
        self.metrics = ensure_metrics(metrics)
        self._full: Dict[int, Tuple[bytes, int]] = {}    # serial -> (frame, pdus)
        self._diff: Dict[Tuple[int, int], Tuple[bytes, int]] = {}
        self._notify: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # Frame builders
    # ------------------------------------------------------------------

    def full_table(self) -> Tuple[bytes, int]:
        """(frame, pdu_count) answering a Reset Query at the current serial."""
        serial = self.state.serial
        cached = self._full.get(serial)
        if cached is not None:
            self.metrics.increment("frame_hits")
            return cached
        parts = [encode_pdu(CacheResponsePdu(self.state.session_id))]
        for vrp in sorted(self.state.vrps):
            parts.append(encode_pdu(vrp_to_pdu(vrp, announce=True)))
        parts.append(encode_pdu(
            EndOfDataPdu(self.state.session_id, serial)))
        frame = (b"".join(parts), len(parts))
        self.metrics.increment("frame_encodes")
        self._full[serial] = frame
        self._evict()
        return frame

    def diff(self, from_serial: int) -> Optional[Tuple[bytes, int]]:
        """(frame, pdu_count) for a Serial Query at ``from_serial``.

        None means history no longer reaches back that far and the
        router must be sent Cache Reset instead.
        """
        serial = self.state.serial
        key = (from_serial, serial)
        cached = self._diff.get(key)
        if cached is not None:
            self.metrics.increment("frame_hits")
            return cached
        diffs = self.state.diff_since(from_serial)
        if diffs is None:
            return None
        net = self.state.flatten_diffs(diffs)
        parts = [encode_pdu(CacheResponsePdu(self.state.session_id))]
        for vrp in net.announced:
            parts.append(encode_pdu(vrp_to_pdu(vrp, announce=True)))
        for vrp in net.withdrawn:
            parts.append(encode_pdu(vrp_to_pdu(vrp, announce=False)))
        parts.append(encode_pdu(
            EndOfDataPdu(self.state.session_id, serial)))
        frame = (b"".join(parts), len(parts))
        self.metrics.increment("frame_encodes")
        self._diff[key] = frame
        self._evict()
        return frame

    def notify(self) -> bytes:
        """The Serial Notify frame for the current serial."""
        serial = self.state.serial
        frame = self._notify.get(serial)
        if frame is None:
            frame = encode_pdu(
                SerialNotifyPdu(self.state.session_id, serial))
            self.metrics.increment("frame_encodes")
            self._notify[serial] = frame
            self._evict()
        else:
            self.metrics.increment("frame_hits")
        return frame

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------

    def _evict(self) -> None:
        """Drop frames no future request can ever hit.

        Every lookup is keyed on the *current* serial (serials are
        monotonic), so frames built for any older serial — full table,
        diff end-point, or notify — are unreachable the moment an
        update lands.  Only the current serial's frames survive; the
        big full-table frame therefore exists at most once.  Frames
        mid-write stay alive through the writer's own reference.
        """
        current = self.state.serial
        for serial in [s for s in self._full if s != current]:
            del self._full[serial]
        for serial in [s for s in self._notify if s != current]:
            del self._notify[serial]
        for key in [k for k in self._diff if k[1] != current]:
            del self._diff[key]
