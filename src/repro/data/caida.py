"""CAIDA AS-relationship file format (serial-1) I/O.

Interdomain simulation studies conventionally load CAIDA's inferred
AS-relationship files.  The serial-1 format is line-oriented::

    # comment lines start with '#'
    <provider-as>|<customer-as>|-1      (provider-to-customer link)
    <peer-as>|<peer-as>|0               (peer-to-peer link)

Reading one of these (or writing our synthetic topologies in the same
format) lets this library interoperate with the usual research
tooling: a downstream user can drop in the real 2017 CAIDA file and
rerun the hijack study on the measured topology.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

from ..bgp.topology import AsTopology, CompiledTopology
from ..netbase.errors import ReproError

__all__ = [
    "CaidaFormatError",
    "read_caida",
    "read_caida_compiled",
    "write_caida",
]


class CaidaFormatError(ReproError):
    """A serial-1 relationship line could not be parsed."""


def read_caida(source: Union[str, Path, TextIO]) -> AsTopology:
    """Load a serial-1 relationship file into an :class:`AsTopology`.

    Raises:
        CaidaFormatError: on malformed lines (with the line number).
    """
    own = isinstance(source, (str, Path))
    stream: TextIO = (
        open(source, "r", encoding="ascii") if own else source  # type: ignore[assignment]
    )
    topology = AsTopology()
    try:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) < 3:
                raise CaidaFormatError(
                    f"line {line_number}: expected a|b|relationship"
                )
            try:
                left, right, relationship = (
                    int(fields[0]),
                    int(fields[1]),
                    int(fields[2]),
                )
            except ValueError as exc:
                raise CaidaFormatError(f"line {line_number}: {exc}") from exc
            if relationship == -1:
                # left is the provider of right
                topology.add_customer_provider(right, left)
            elif relationship == 0:
                topology.add_peering(left, right)
            else:
                raise CaidaFormatError(
                    f"line {line_number}: unknown relationship {relationship}"
                )
    finally:
        if own:
            stream.close()
    return topology


def read_caida_compiled(
    source: Union[str, Path, TextIO]
) -> tuple[AsTopology, CompiledTopology]:
    """Load a serial-1 file and compile it for the array engine.

    Returns both forms: the mutable :class:`AsTopology` (for seeding,
    sampling, and the object engine) and its cached
    :class:`CompiledTopology` (flat CSR arrays for
    :mod:`repro.bgp.fastprop`).  One call site for CAIDA-scale runs:
    parse once, compile once, share everywhere.
    """
    topology = read_caida(source)
    return topology, topology.compiled()


def write_caida(
    topology: AsTopology, destination: Union[str, Path, TextIO]
) -> int:
    """Write a topology as serial-1 lines; returns the edge count."""
    own = isinstance(destination, (str, Path))
    stream: TextIO = (
        open(destination, "w", encoding="ascii")
        if own
        else destination  # type: ignore[assignment]
    )
    count = 0
    try:
        stream.write("# serial-1 AS relationships (repro synthetic)\n")
        stream.write("# provider|customer|-1  /  peer|peer|0\n")
        for a, b, kind in sorted(topology.edges()):
            if kind.value == "customer":
                # edges() yields (customer, provider, CUSTOMER)
                stream.write(f"{b}|{a}|-1\n")
            else:
                stream.write(f"{a}|{b}|0\n")
            count += 1
    finally:
        if own:
            stream.close()
    return count
