"""Synthetic data: AS graphs, allocations, BGP tables, RPKI contents.

Substitutes for the paper's RouteViews and RPKI-repository archives —
see DESIGN.md §2 for the substitution rationale and the calibration
arithmetic behind :class:`GeneratorConfig`'s defaults.
"""

from .allocation import AddressAllocator, Allocation, AllocationError
from .asgraph import TopologyProfile, generate_topology
from .caida import (
    CaidaFormatError,
    read_caida,
    read_caida_compiled,
    write_caida,
)
from .distributions import capped_pareto_int, geometric_int, weighted_choice
from .internet import GeneratorConfig, InternetSnapshot, generate_snapshot
from .routeviews import (
    RibFormatError,
    read_origin_pairs,
    read_rib,
    write_origin_pairs,
    write_rib,
)
from .rpki_archive import ArchiveFormatError, read_vrp_csv, write_vrp_csv
from .snapshots import WEEKLY_LABELS, SeriesConfig, generate_weekly_series

__all__ = [
    "AddressAllocator",
    "Allocation",
    "AllocationError",
    "ArchiveFormatError",
    "CaidaFormatError",
    "GeneratorConfig",
    "InternetSnapshot",
    "RibFormatError",
    "SeriesConfig",
    "TopologyProfile",
    "WEEKLY_LABELS",
    "capped_pareto_int",
    "generate_snapshot",
    "generate_topology",
    "generate_weekly_series",
    "read_caida",
    "read_caida_compiled",
    "write_caida",
    "geometric_int",
    "read_origin_pairs",
    "read_rib",
    "read_vrp_csv",
    "weighted_choice",
    "write_origin_pairs",
    "write_rib",
    "write_vrp_csv",
]
