"""The synthetic Internet: coordinated BGP tables and RPKI contents.

This generator replaces the paper's two data sources — RouteViews RIB
dumps and the validated contents of the RPKI repositories — with a
single coherent model, because every §6–§7 measurement couples the two:
whether a ROA is *minimal* depends on what its AS announces, and the
compression ratios depend on the sibling structure of announcements.

Per-AS behavior model
---------------------

Every AS holds one or more allocated blocks (heavy-tailed count).  Each
block is announced by one of three BGP patterns:

* **atom** — announce the allocation, nothing else (the overwhelming
  majority: the paper's bound works out to 6.2% *because* "most ASes do
  not send BGP announcements for subprefixes of their prefixes");
* **full de-aggregation** — announce the block plus *both* halves (and
  sometimes all four quarters): traffic engineering on contiguous
  space, the source of the ≈6% lossless compressibility;
* **partial de-aggregation** — announce the block plus one lone deeper
  subprefix: rare, and the reason the paper's software lands at 6.1%
  against the 6.2% bound rather than exactly on it.

RPKI adopters additionally issue one ROA, in one of five styles whose
population sizes are calibrated to the paper's 2017-06-01 dataset
(≈7.5k ROAs, ≈40k tuples, ≈12% maxLength use, 84% of it vulnerable,
15.9% status-quo compressibility, +32% tuples under minimal
conversion — see DESIGN.md for the arithmetic):

* ``exact``       — a minimal ROA listing exactly the announced set;
* ``sibling_enum``— enumerates the block and both halves without
  maxLength although only the block is announced (compressible, not
  maxLength-vulnerable);
* ``ml_loose_cover``   — (p, maxLength 24) while announcing p only:
  the classic vulnerable misconfiguration;
* ``ml_loose_scatter`` — (p, maxLength 24) while announcing a handful
  of scattered /24s and *not* p: vulnerable, and the main source of
  the "13K additional prefixes" a minimal conversion must add;
* ``ml_tight``    — (p, maxLength len+1) with all of p, p0, p1
  genuinely announced: the rare *minimal* use of maxLength (the
  paper's 16%).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Iterator, Optional

from ..netbase import AF_INET, AF_INET6, Prefix
from ..rpki.roa import Roa, RoaPrefix
from ..rpki.scan import scan_roa_payloads
from ..rpki.vrp import Vrp
from .allocation import AddressAllocator
from .distributions import capped_pareto_int, geometric_int

__all__ = ["GeneratorConfig", "InternetSnapshot", "generate_snapshot"]

#: (prefix, origin AS) — one BGP routing-table entry's validation view.
OriginPair = tuple[Prefix, int]


@dataclass(frozen=True)
class GeneratorConfig:
    """All generator knobs.  Defaults reproduce the 2017-06-01 dataset.

    Counts marked "at scale 1.0" shrink proportionally with ``scale``,
    which keeps every *ratio* the paper reports (the measurements are
    scale-free) while letting tests run on 1% of the Internet.
    """

    seed: int = 20170601
    scale: float = 1.0
    label: str = "2017-06-01"

    # Population (at scale 1.0).
    n_ases: int = 99_000
    alloc_alpha: float = 1.04
    alloc_cap: int = 1500
    ipv6_fraction: float = 0.065

    # BGP behavior.
    full_deagg_prob: float = 0.0435
    deep_deagg_prob: float = 0.15
    partial_deagg_prob: float = 0.0016
    adopter_full_deagg_prob: float = 0.033

    # RPKI adopter style populations (at scale 1.0).
    adopters_exact: int = 5_900
    adopters_sibling_enum: int = 400
    adopters_ml_loose_scatter: int = 650
    adopters_ml_loose_cover: int = 110
    adopters_ml_tight: int = 145
    adopter_alloc_mean: float = 5.0
    adopter_alloc_cap: int = 40

    # Style details.
    scatter_low: int = 3
    scatter_high: int = 10
    loose_max_length: int = 24

    # Non-adopter announcements that collide with someone else's ROA
    # (RPKI-invalid routes, for origin-validation realism).
    misconfig_invalid_pairs: int = 2_000

    def scaled(self, value: int) -> int:
        return max(1, round(value * self.scale))

    def at_scale(self, scale: float, **overrides: object) -> "GeneratorConfig":
        return replace(self, scale=scale, **overrides)  # type: ignore[arg-type]


@dataclass
class InternetSnapshot:
    """One dated (BGP table, RPKI contents) pair.

    Attributes:
        label: dataset date, e.g. "2017-06-01".
        announced: every (prefix, origin AS) pair in the BGP tables.
        roas: the validated ROA payloads in the RPKI.
        adopter_ases: ASes that issued ROAs.
        config: the generator configuration that produced it.
    """

    label: str
    announced: list[OriginPair]
    roas: list[Roa]
    adopter_ases: set[int]
    config: GeneratorConfig

    @cached_property
    def vrps(self) -> list[Vrp]:
        """The VRP tuples today's RPKI yields (the "status quo" row)."""
        return scan_roa_payloads(self.roas)

    @cached_property
    def announced_set(self) -> set[OriginPair]:
        return set(self.announced)

    def ipv4_pairs(self) -> Iterator[OriginPair]:
        return ((p, a) for p, a in self.announced if p.family == AF_INET)

    def ipv6_pairs(self) -> Iterator[OriginPair]:
        return ((p, a) for p, a in self.announced if p.family == AF_INET6)

    def __repr__(self) -> str:
        return (
            f"<InternetSnapshot {self.label}: {len(self.announced)} pairs, "
            f"{len(self.roas)} ROAs>"
        )


class _Generator:
    """Single-use generation state (kept off the public API)."""

    def __init__(self, config: GeneratorConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.allocator = AddressAllocator()
        self.announced: list[OriginPair] = []
        self.roas: list[Roa] = []
        self.adopters: set[int] = set()

    # ------------------------------------------------------------------
    # BGP-side building blocks
    # ------------------------------------------------------------------

    def _family(self) -> int:
        if self.rng.random() < self.config.ipv6_fraction:
            return AF_INET6
        return AF_INET

    def _routable_depth(self, prefix: Prefix) -> int:
        """Longest announceable subprefix: /24 (IPv4) or /48 (IPv6).

        Routers commonly discard longer announcements (§3 footnote), so
        the generator never produces them.
        """
        return 24 if prefix.family == AF_INET else 48

    def _announce_block(
        self, prefix: Prefix, asn: int, full_deagg_prob: Optional[float] = None
    ) -> list[Prefix]:
        """Announce one allocation per the BGP behavior model.

        Returns the full list of prefixes announced for the block.
        """
        rng = self.rng
        config = self.config
        if full_deagg_prob is None:
            full_deagg_prob = config.full_deagg_prob
        depth_limit = self._routable_depth(prefix)
        announced = [prefix]
        roll = rng.random()
        if roll < full_deagg_prob and prefix.length + 2 <= depth_limit:
            announced.append(prefix.left_child())
            announced.append(prefix.right_child())
            if rng.random() < config.deep_deagg_prob:
                announced.extend(prefix.subprefixes(prefix.length + 2))
        elif (
            roll < full_deagg_prob + config.partial_deagg_prob
            and prefix.length + 2 <= depth_limit
        ):
            depth = min(prefix.length + rng.randint(2, 4), depth_limit)
            announced.append(self._random_subprefix(prefix, depth))
        for announced_prefix in announced:
            self.announced.append((announced_prefix, asn))
        return announced

    def _random_subprefix(self, prefix: Prefix, length: int) -> Prefix:
        offset = self.rng.randrange(1 << (length - prefix.length))
        step = 1 << (prefix.max_family_length - length)
        return Prefix(prefix.family, prefix.value + offset * step, length)

    def _allocate_blocks(self, count: int, profile: str = "fringe") -> list[Prefix]:
        return [
            self.allocator.allocate_random_size(self._family(), self.rng, profile)
            for _ in range(count)
        ]

    # ------------------------------------------------------------------
    # Adopter styles
    # ------------------------------------------------------------------

    def _adopter_blocks(self, profile: str = "adopter") -> list[Prefix]:
        count = geometric_int(
            self.rng, self.config.adopter_alloc_mean, self.config.adopter_alloc_cap
        )
        return self._allocate_blocks(count, profile=profile)

    def _style_exact(self, asn: int) -> Roa:
        entries: list[RoaPrefix] = []
        for block in self._adopter_blocks():
            announced = self._announce_block(
                block, asn, self.config.adopter_full_deagg_prob
            )
            for announced_prefix in announced:
                entries.append(RoaPrefix(announced_prefix))
        return Roa(asn, entries)

    def _style_sibling_enum(self, asn: int) -> Roa:
        entries: list[RoaPrefix] = []
        for block in self._adopter_blocks():
            self.announced.append((block, asn))  # block only, no de-agg
            entries.append(RoaPrefix(block))
            entries.append(RoaPrefix(block.left_child()))
            entries.append(RoaPrefix(block.right_child()))
        return Roa(asn, entries)

    def _loose_max_length(self, block: Prefix) -> int:
        if block.family == AF_INET6:
            return min(48, block.length + 8)
        return max(self.config.loose_max_length, block.length + 1)

    def _style_ml_loose_cover(self, asn: int) -> Roa:
        entries = []
        for block in self._adopter_blocks():
            self.announced.append((block, asn))
            entries.append(RoaPrefix(block, self._loose_max_length(block)))
        return Roa(asn, entries)

    def _style_ml_loose_scatter(self, asn: int) -> Roa:
        entries = []
        for block in self._adopter_blocks(profile="scatter"):
            max_length = self._loose_max_length(block)
            scatter = self.rng.randint(self.config.scatter_low,
                                       self.config.scatter_high)
            seen: set[Prefix] = set()
            for _ in range(scatter):
                sub = self._random_subprefix(block, max_length)
                if sub not in seen:
                    seen.add(sub)
                    self.announced.append((sub, asn))
            entries.append(RoaPrefix(block, max_length))
        return Roa(asn, entries)

    def _style_ml_tight(self, asn: int) -> Roa:
        entries = []
        for block in self._adopter_blocks():
            self.announced.append((block, asn))
            self.announced.append((block.left_child(), asn))
            self.announced.append((block.right_child(), asn))
            entries.append(RoaPrefix(block, block.length + 1))
        return Roa(asn, entries)

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------

    def run(self) -> InternetSnapshot:
        config = self.config
        styles = (
            [self._style_exact] * config.scaled(config.adopters_exact)
            + [self._style_sibling_enum] * config.scaled(config.adopters_sibling_enum)
            + [self._style_ml_loose_scatter]
            * config.scaled(config.adopters_ml_loose_scatter)
            + [self._style_ml_loose_cover]
            * config.scaled(config.adopters_ml_loose_cover)
            + [self._style_ml_tight] * config.scaled(config.adopters_ml_tight)
        )
        self.rng.shuffle(styles)

        total_ases = max(config.scaled(config.n_ases), len(styles) + 1)
        next_asn = 100
        for style in styles:
            asn = next_asn
            next_asn += 1
            self.adopters.add(asn)
            self.roas.append(style(asn))

        for _ in range(total_ases - len(styles)):
            asn = next_asn
            next_asn += 1
            block_count = capped_pareto_int(
                self.rng, config.alloc_alpha, self._fringe_cap()
            )
            for block in self._allocate_blocks(block_count):
                self._announce_block(block, asn)

        self._add_invalid_announcements(next_asn)
        return InternetSnapshot(
            label=config.label,
            announced=self.announced,
            roas=self.roas,
            adopter_ases=self.adopters,
            config=config,
        )

    def _fringe_cap(self) -> int:
        """The per-AS allocation cap, shrunk at small scales.

        The fringe tail is what makes single giant ASes dominate a tiny
        snapshot; capping it proportionally keeps the *relative*
        variance of scaled datasets comparable to the full-size one.
        (At scale >= 0.2 the configured cap applies unchanged.)
        """
        config = self.config
        return max(30, round(config.alloc_cap * min(1.0, config.scale * 5)))

    def _add_invalid_announcements(self, next_asn: int) -> None:
        """Non-adopters originating inside others' ROA space (invalid)."""
        if not self.roas:
            return
        for _ in range(self.config.scaled(self.config.misconfig_invalid_pairs)):
            roa = self.rng.choice(self.roas)
            entry = self.rng.choice(roa.prefixes)
            depth_limit = self._routable_depth(entry.prefix)
            if entry.prefix.length + 1 > depth_limit:
                continue
            depth = min(entry.prefix.length + self.rng.randint(1, 4),
                        depth_limit)
            hijacker = next_asn + self.rng.randrange(5_000)
            self.announced.append(
                (self._random_subprefix(entry.prefix, depth), hijacker)
            )


def generate_snapshot(config: GeneratorConfig = GeneratorConfig()) -> InternetSnapshot:
    """Generate one dated synthetic (BGP, RPKI) snapshot."""
    return _Generator(config).run()
