"""Heavy-tailed random helpers for the synthetic-Internet generators.

The real Internet's per-AS statistics (prefixes originated, customer
degrees) are famously heavy-tailed; these helpers wrap the stdlib
``random`` module with capped Pareto draws and weighted categorical
picks so generator code stays readable.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

__all__ = ["capped_pareto_int", "geometric_int", "weighted_choice"]

T = TypeVar("T")


def capped_pareto_int(
    rng: random.Random, alpha: float, cap: int, minimum: int = 1
) -> int:
    """An integer ``minimum + floor(Pareto(alpha) - 1)``, capped.

    ``alpha`` close to 1 gives a very fat tail (a few huge values);
    larger alphas concentrate near ``minimum``.
    """
    value = minimum + int(rng.paretovariate(alpha) - 1.0)
    return min(value, cap)


def geometric_int(
    rng: random.Random, mean: float, cap: int, minimum: int = 1
) -> int:
    """A geometric draw with the given mean, starting at ``minimum``.

    Far lighter-tailed than Pareto: suitable for populations whose
    aggregate statistics must be stable at small sample sizes (e.g.
    ROA sizes in a scaled-down snapshot).
    """
    if mean <= minimum:
        return minimum
    success = 1.0 / (mean - minimum + 1.0)
    count = minimum
    while count < cap and rng.random() > success:
        count += 1
    return count


def weighted_choice(
    rng: random.Random, items: Sequence[T], weights: Sequence[float]
) -> T:
    """One draw from a categorical distribution."""
    return rng.choices(items, weights=weights, k=1)[0]
