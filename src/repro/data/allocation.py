"""Address-space allocation: carving RIR pools into AS-held blocks.

A registry hands out aligned blocks from large pools (IPv4 /8s, an
IPv6 /12), never twice.  :class:`AddressAllocator` reproduces just that
bookkeeping: sequential aligned carving with per-family pools, so every
allocation in a synthetic Internet is disjoint by construction —
exactly the invariant the RPKI's resource-containment checks rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..netbase import AF_INET, AF_INET6, Prefix
from ..netbase.errors import ReproError
from .distributions import weighted_choice

__all__ = ["AllocationError", "AddressAllocator", "Allocation"]

#: IPv4 size mixes by holder profile.  The fringe mix mirrors the real
#: routing table's skew toward /22–/24; the adopter mix models the
#: larger organizations that adopted the RPKI early, and stays at /22
#: or shorter so the classic "maxLength 24" misconfiguration always
#: authorizes unannounced space.
_V4_PROFILES = {
    "fringe": {16: 0.01, 18: 0.02, 19: 0.04, 20: 0.08, 21: 0.12,
               22: 0.28, 23: 0.20, 24: 0.25},
    "adopter": {16: 0.08, 17: 0.05, 18: 0.12, 19: 0.20, 20: 0.25,
                21: 0.15, 22: 0.15},
    # Scatter-style maxLength users hold large blocks: announcing a
    # handful of /24s out of a /16-/19 is the classic vulnerable
    # configuration RFC 7115 warns about.
    "scatter": {16: 0.30, 17: 0.20, 18: 0.30, 19: 0.20},
}

#: IPv6 allocation sizes; /32 is the standard LIR allocation.
_V6_LENGTH_WEIGHTS = {32: 0.55, 36: 0.10, 40: 0.15, 44: 0.08, 48: 0.12}


class AllocationError(ReproError):
    """The pool is exhausted or the request is malformed."""


@dataclass(frozen=True)
class Allocation:
    """One block held by one AS."""

    prefix: Prefix
    asn: int


class AddressAllocator:
    """Sequential aligned carving from per-family pools.

    IPv4 draws from the 11 /8 pools 20/8 … 30/8 (an arbitrary but
    stable choice of unicast space); IPv6 from 2a00::/12.  Pools are
    consumed front to back; alignment is maintained by rounding the
    cursor up to the requested block size.
    """

    def __init__(self) -> None:
        self._pools = {
            AF_INET: [(Prefix.parse(f"{octet}.0.0.0/8"), 0) for octet in range(1, 127)],
            AF_INET6: [(Prefix.parse("2a00::/12"), 0), (Prefix.parse("2c00::/12"), 0)],
        }
        self._pool_index = {AF_INET: 0, AF_INET6: 0}

    def allocate(self, family: int, length: int) -> Prefix:
        """Carve the next aligned block of ``length`` bits.

        Raises:
            AllocationError: when every pool of the family is spent.
        """
        pools = self._pools[family]
        width = 32 if family == AF_INET else 128
        while self._pool_index[family] < len(pools):
            pool, cursor = pools[self._pool_index[family]]
            if length < pool.length:
                raise AllocationError(
                    f"cannot allocate /{length} from pool {pool}"
                )
            step = 1 << (width - length)
            aligned = (cursor + step - 1) // step * step
            base = pool.value + aligned
            if base + step <= pool.value + (1 << (width - pool.length)):
                pools[self._pool_index[family]] = (pool, aligned + step)
                return Prefix(family, base, length)
            self._pool_index[family] += 1
        raise AllocationError(f"IPv{family} pools exhausted")

    def allocate_random_size(
        self, family: int, rng: random.Random, profile: str = "fringe"
    ) -> Prefix:
        """Carve a block whose size follows the profile's length mix.

        Args:
            profile: "fringe" (routing-table-like skew toward small
                blocks) or "adopter" (larger early-adopter holdings).
        """
        if family == AF_INET:
            weights = _V4_PROFILES[profile]
        else:
            weights = _V6_LENGTH_WEIGHTS
        length = weighted_choice(rng, list(weights), list(weights.values()))
        return self.allocate(family, length)

    def remaining_pools(self, family: int) -> int:
        """Pools not yet started or partially used (capacity signal)."""
        return len(self._pools[family]) - self._pool_index[family]
