"""Validated-ROA CSV archives.

Relying-party tools export their validated payloads in a simple CSV —
the de-facto interchange format (RIPE's validator, routinator's
``vrps`` command)::

    URI,ASN,IP Prefix,Max Length,Not Before,Not After
    rsync://rpki.example/repo/roa-0.roa,AS111,168.122.0.0/16,24,2017-01-01,2018-01-01

Only ASN, prefix, and maxLength carry measurement semantics; the rest
is preserved round-trip but ignored by the analysis code.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from ..netbase import Prefix
from ..netbase.errors import PrefixError, ReproError
from ..rpki.vrp import Vrp

__all__ = ["ArchiveFormatError", "write_vrp_csv", "read_vrp_csv"]

_HEADER = ["URI", "ASN", "IP Prefix", "Max Length", "Not Before", "Not After"]


class ArchiveFormatError(ReproError):
    """A CSV row could not be parsed as a VRP."""


def write_vrp_csv(
    vrps: Iterable[Vrp],
    destination: Union[str, Path, TextIO],
    *,
    uri_prefix: str = "rsync://rpki.example/repo",
    not_before: str = "2017-01-01",
    not_after: str = "2018-01-01",
) -> int:
    """Write VRPs in validator-CSV form; returns the row count."""
    own = isinstance(destination, (str, Path))
    stream: TextIO = (
        open(destination, "w", encoding="ascii", newline="")
        if own
        else destination  # type: ignore[assignment]
    )
    count = 0
    try:
        writer = csv.writer(stream)
        writer.writerow(_HEADER)
        for index, vrp in enumerate(vrps):
            writer.writerow(
                [
                    f"{uri_prefix}/roa-{index}.roa",
                    f"AS{vrp.asn}",
                    str(vrp.prefix),
                    str(vrp.max_length),
                    not_before,
                    not_after,
                ]
            )
            count += 1
    finally:
        if own:
            stream.close()
    return count


def read_vrp_csv(source: Union[str, Path, TextIO]) -> Iterator[Vrp]:
    """Read validator-CSV rows back into VRPs.

    Raises:
        ArchiveFormatError: on malformed rows (with the row number).
    """
    own = isinstance(source, (str, Path))
    stream: TextIO = (
        open(source, "r", encoding="ascii", newline="")
        if own
        else source  # type: ignore[assignment]
    )
    try:
        reader = csv.reader(stream)
        for row_number, row in enumerate(reader, start=1):
            if not row or row[0] == _HEADER[0]:
                continue
            if len(row) < 4:
                raise ArchiveFormatError(f"row {row_number}: too few columns")
            asn_text = row[1].strip()
            if asn_text.upper().startswith("AS"):
                asn_text = asn_text[2:]
            try:
                yield Vrp(
                    Prefix.parse(row[2].strip()),
                    int(row[3]),
                    int(asn_text),
                )
            except (PrefixError, ValueError) as exc:
                raise ArchiveFormatError(f"row {row_number}: {exc}") from exc
    finally:
        if own:
            stream.close()
