"""Synthetic AS-level Internet topologies.

The paper's attack-effectiveness claims (§4/§5, via [16]) are judged on
an Internet-like AS graph.  Real evaluations use CAIDA's inferred
topology; offline, we generate one with the same gross structure:

* a small clique of tier-1 ASes, fully meshed with peering;
* a middle tier of transit providers, multi-homed to tier-1s/each
  other with preferential attachment (heavy-tailed customer degrees);
* a large fringe of stub ASes (the vast majority, as in the real
  Internet) multi-homed to 1–3 providers;
* extra peering edges among mid-tier ASes.

The construction keeps the customer→provider relation acyclic by
attaching every new AS below existing ones, so Gao–Rexford propagation
is well-defined.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..bgp.topology import AsTopology

__all__ = ["TopologyProfile", "generate_topology"]


@dataclass(frozen=True)
class TopologyProfile:
    """Knobs for :func:`generate_topology`.

    Attributes:
        ases: total number of ASes.
        tier1: size of the fully-meshed top clique.
        transit_fraction: share of ASes (beyond tier-1) that sell
            transit; the rest are stubs.
        peering_fraction: extra peer edges among transit ASes, as a
            fraction of the transit population.
        max_providers: providers per multi-homed AS are drawn from
            1..max_providers (weighted toward fewer).
    """

    ases: int = 1000
    tier1: int = 5
    transit_fraction: float = 0.15
    peering_fraction: float = 0.5
    max_providers: int = 3

    def __post_init__(self) -> None:
        if self.ases < self.tier1 + 2:
            raise ValueError("need more ASes than the tier-1 clique")
        if not 0 <= self.transit_fraction <= 1:
            raise ValueError("transit_fraction must be in [0, 1]")


def generate_topology(
    profile: TopologyProfile = TopologyProfile(),
    rng: random.Random | None = None,
) -> AsTopology:
    """Generate a synthetic AS topology per ``profile``.

    AS numbers are 1..profile.ases, assigned top-down: 1..tier1 are the
    clique, then transit ASes, then stubs — convenient for picking
    victims/attackers by role in experiments.
    """
    rng = rng if rng is not None else random.Random(0)
    topology = AsTopology()

    tier1 = list(range(1, profile.tier1 + 1))
    for asn in tier1:
        topology.add_as(asn)
    for index, left in enumerate(tier1):
        for right in tier1[index + 1:]:
            topology.add_peering(left, right)

    transit_count = int((profile.ases - profile.tier1) * profile.transit_fraction)
    transit_start = profile.tier1 + 1
    transit = list(range(transit_start, transit_start + transit_count))
    stubs = list(range(transit_start + transit_count, profile.ases + 1))

    # Preferential attachment: an AS's chance of being picked as a
    # provider grows with the customers it already has.
    attachment: list[int] = list(tier1)

    def pick_providers(candidates: list[int], count: int) -> set[int]:
        chosen: set[int] = set()
        attempts = 0
        while len(chosen) < count and attempts < 50 * count:
            chosen.add(rng.choice(candidates))
            attempts += 1
        return chosen

    for asn in transit:
        topology.add_as(asn)
        provider_count = rng.choices(
            range(1, profile.max_providers + 1),
            weights=[2**-(k - 1) for k in range(1, profile.max_providers + 1)],
        )[0]
        for provider in pick_providers(attachment, provider_count):
            topology.add_customer_provider(asn, provider)
            attachment.append(provider)  # reinforce popular providers
        attachment.append(asn)  # transit ASes can now attract customers

    for asn in stubs:
        topology.add_as(asn)
        provider_count = rng.choices(
            range(1, profile.max_providers + 1),
            weights=[4**-(k - 1) for k in range(1, profile.max_providers + 1)],
        )[0]
        for provider in pick_providers(attachment, provider_count):
            topology.add_customer_provider(asn, provider)
            attachment.append(provider)

    # Sprinkle mid-tier peering.
    peer_edges = int(len(transit) * profile.peering_fraction)
    placed = 0
    attempts = 0
    while placed < peer_edges and attempts < 50 * max(peer_edges, 1):
        attempts += 1
        if len(transit) < 2:
            break
        left, right = rng.sample(transit, 2)
        if left in topology.neighbors_of(right):
            continue
        topology.add_peering(left, right)
        placed += 1

    return topology
