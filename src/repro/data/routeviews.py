"""RouteViews-style RIB table I/O.

The paper compares ROAs "against the routing entries in the BGP tables
of all Route Views collectors".  This module reads and writes a textual
RIB format modeled on the pipe-separated lines that RouteViews tooling
(``bgpdump -m``) emits::

    TABLE_DUMP2|1496275200|B|198.32.160.1|11537|168.122.0.0/16|11537 3356 111|IGP

Only the prefix and AS-path fields matter to origin-validation
measurements; the loader tolerates and preserves the rest.  A compact
``prefix|origin`` two-column format is also supported for synthetic
dumps where full paths would be noise.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from ..netbase import Prefix
from ..netbase.errors import PrefixError, ReproError
from ..bgp.announcement import Announcement

__all__ = [
    "RibFormatError",
    "write_rib",
    "read_rib",
    "write_origin_pairs",
    "read_origin_pairs",
]

_FIELDS = 7  # TABLE_DUMP2 fields before the optional IGP tail


class RibFormatError(ReproError):
    """A RIB line could not be parsed."""


def _open_for_read(source: Union[str, Path, TextIO]) -> TextIO:
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="ascii")
    return source


def write_rib(
    announcements: Iterable[Announcement],
    destination: Union[str, Path, TextIO],
    *,
    timestamp: int = 1496275200,  # 2017-06-01 00:00 UTC
    collector_ip: str = "198.32.160.1",
) -> int:
    """Write announcements as TABLE_DUMP2-style lines; returns count."""
    own = isinstance(destination, (str, Path))
    stream: TextIO = (
        open(destination, "w", encoding="ascii") if own else destination  # type: ignore[arg-type]
    )
    count = 0
    try:
        for announcement in announcements:
            path_text = " ".join(str(asn) for asn in announcement.as_path)
            peer_asn = announcement.as_path[0]
            stream.write(
                f"TABLE_DUMP2|{timestamp}|B|{collector_ip}|{peer_asn}|"
                f"{announcement.prefix}|{path_text}|IGP\n"
            )
            count += 1
    finally:
        if own:
            stream.close()
    return count


def read_rib(source: Union[str, Path, TextIO]) -> Iterator[Announcement]:
    """Parse TABLE_DUMP2-style lines back into announcements.

    Raises:
        RibFormatError: on malformed lines (with the line number).
    """
    stream = _open_for_read(source)
    own = isinstance(source, (str, Path))
    try:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("|")
            if len(fields) < _FIELDS:
                raise RibFormatError(
                    f"line {line_number}: expected >= {_FIELDS} fields"
                )
            try:
                prefix = Prefix.parse(fields[5])
                as_path = tuple(int(asn) for asn in fields[6].split())
            except (PrefixError, ValueError) as exc:
                raise RibFormatError(f"line {line_number}: {exc}") from exc
            if not as_path:
                raise RibFormatError(f"line {line_number}: empty AS path")
            yield Announcement(prefix, as_path)
    finally:
        if own:
            stream.close()


def write_origin_pairs(
    pairs: Iterable[tuple[Prefix, int]],
    destination: Union[str, Path, TextIO],
) -> int:
    """Write the compact ``prefix|origin`` form; returns count."""
    own = isinstance(destination, (str, Path))
    stream: TextIO = (
        open(destination, "w", encoding="ascii") if own else destination  # type: ignore[arg-type]
    )
    count = 0
    try:
        stream.write("# prefix|origin_as\n")
        for prefix, origin in pairs:
            stream.write(f"{prefix}|{origin}\n")
            count += 1
    finally:
        if own:
            stream.close()
    return count


def read_origin_pairs(
    source: Union[str, Path, TextIO],
) -> Iterator[tuple[Prefix, int]]:
    """Read the compact ``prefix|origin`` form."""
    stream = _open_for_read(source)
    own = isinstance(source, (str, Path))
    try:
        for line_number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            prefix_text, _, origin_text = line.partition("|")
            try:
                yield Prefix.parse(prefix_text), int(origin_text)
            except (PrefixError, ValueError) as exc:
                raise RibFormatError(f"line {line_number}: {exc}") from exc
    finally:
        if own:
            stream.close()


def dumps_rib(announcements: Iterable[Announcement]) -> str:
    """The RIB text as a string (convenience for tests)."""
    buffer = io.StringIO()
    write_rib(announcements, buffer)
    return buffer.getvalue()
