"""Weekly dataset series: the timeline behind Figure 3.

The paper aggregates ROAs and BGP advertisements weekly from
2017-04-13 to 2017-06-01 (eight snapshots) and plots every scenario's
PDU count along that timeline.  We reproduce the series with one
generator run per week: each week has its own seed (so the series
wiggles like real measurements) and a gentle growth trend in both the
routing table and RPKI adoption (the real table grew ≈0.2%/week; RPKI
contents a bit faster).
"""

from __future__ import annotations

from dataclasses import dataclass

from .internet import GeneratorConfig, InternetSnapshot, generate_snapshot

__all__ = ["WEEKLY_LABELS", "SeriesConfig", "generate_weekly_series"]

#: The paper's eight dataset dates (Figure 3's x axis).
WEEKLY_LABELS = (
    "2017-04-13",
    "2017-04-20",
    "2017-04-27",
    "2017-05-04",
    "2017-05-11",
    "2017-05-18",
    "2017-05-25",
    "2017-06-01",
)


@dataclass(frozen=True)
class SeriesConfig:
    """Knobs for the weekly series.

    Attributes:
        base: generator configuration for the final (6/1) week; earlier
            weeks shrink from it.
        table_growth_per_week: weekly growth of the BGP table.
        rpki_growth_per_week: weekly growth of RPKI adoption.
    """

    base: GeneratorConfig = GeneratorConfig()
    table_growth_per_week: float = 0.002
    rpki_growth_per_week: float = 0.006


def generate_weekly_series(
    config: SeriesConfig = SeriesConfig(),
) -> list[InternetSnapshot]:
    """Generate the eight weekly snapshots, oldest first."""
    snapshots = []
    final_week = len(WEEKLY_LABELS) - 1
    for week, label in enumerate(WEEKLY_LABELS):
        weeks_back = final_week - week
        table_factor = (1.0 + config.table_growth_per_week) ** -weeks_back
        rpki_factor = (1.0 + config.rpki_growth_per_week) ** -weeks_back
        base = config.base
        # The scale field multiplies *every* scaled count, adopters
        # included, so adopter populations are compensated to grow at
        # the RPKI rate rather than the table rate.
        relative = rpki_factor / table_factor
        week_config = base.at_scale(
            base.scale * table_factor,
            label=label,
            seed=base.seed + week,
            adopters_exact=round(base.adopters_exact * relative),
            adopters_sibling_enum=round(base.adopters_sibling_enum * relative),
            adopters_ml_loose_scatter=round(
                base.adopters_ml_loose_scatter * relative
            ),
            adopters_ml_loose_cover=round(
                base.adopters_ml_loose_cover * relative
            ),
            adopters_ml_tight=round(base.adopters_ml_tight * relative),
        )
        snapshots.append(generate_snapshot(week_config))
    return snapshots
