"""Aggregation: streaming TrialRecords into per-cell statistics.

For every (fraction, cell) grid coordinate the aggregator keeps the
attacker-capture values in trial order and reduces them to a mean, a
sample standard deviation, and a bootstrap percentile confidence
interval for the mean.  The bootstrap RNG is derived from the spec
seed and the cell coordinates, so the whole result — intervals
included — is a pure function of (spec, topology), independent of
which executor produced the records or in what order they arrived.

Records stream through
:class:`~repro.results.accumulate.CellAccumulator`\\ s: the aggregator
holds one small outcome row per trial per cell rather than whole
:class:`TrialRecord` objects, so driver memory on million-trial grids
is bounded by the values the bootstrap genuinely needs.
"""

from __future__ import annotations

import hashlib
import random
import statistics
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Union

from ..netbase.errors import ReproError
from ..results.accumulate import GridAccumulator
from .evaluate import TrialRecord
from .spec import ExperimentSpec

__all__ = [
    "CellStats",
    "ExperimentResult",
    "aggregate_records",
    "prefix_ci_width",
]


def _bootstrap_seed(seed: int, fraction_index: int, cell_index: int) -> int:
    key = f"repro.exper.bootstrap/{seed}/{fraction_index}/{cell_index}"
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


def _stop_seed(
    seed: int, fraction_index: int, cell_index: int, prefix: int
) -> int:
    key = (
        f"repro.exper.stop/{seed}/{fraction_index}/{cell_index}/{prefix}"
    )
    return int.from_bytes(
        hashlib.blake2b(key.encode(), digest_size=8).digest(), "big"
    )


def prefix_ci_width(
    values: Sequence[float],
    seed: int,
    fraction_index: int,
    cell_index: int,
    *,
    resamples: int = 250,
    confidence: float = 0.95,
) -> float:
    """Bootstrap CI width of the mean over a completed-trial prefix.

    The early-stopping primitive: seeded by the grid coordinate *and*
    the prefix length, so the answer is a pure function of the first
    ``len(values)`` trial outcomes — identical no matter which
    executor produced them or in what order they arrived.
    """
    low, high = _bootstrap_ci(
        values,
        random.Random(
            _stop_seed(seed, fraction_index, cell_index, len(values))
        ),
        resamples,
        confidence,
    )
    return high - low


def _bootstrap_ci(
    values: Sequence[float],
    rng: random.Random,
    resamples: int,
    confidence: float,
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``."""
    n = len(values)
    if n == 1:
        return values[0], values[0]
    means = sorted(
        sum(rng.choices(values, k=n)) / n for _ in range(resamples)
    )
    tail = (1.0 - confidence) / 2.0
    low_index = min(int(tail * resamples), resamples - 1)
    high_index = max(int((1.0 - tail) * resamples) - 1, 0)
    return means[low_index], means[high_index]


@dataclass(frozen=True)
class CellStats:
    """Statistics for one (fraction, cell) grid coordinate.

    Attributes:
        cell: the cell's name.
        fraction: validating fraction (``None`` = universal).
        values: attacker capture fractions, in trial order.
        mean / stdev: of ``values`` (stdev 0 for a single trial).
        ci_low / ci_high: bootstrap CI bounds for the mean.
        victim_mean / disconnected_mean: companion averages.
        filtered_fraction: share of trials whose attack announcement
            validation removed everywhere.
    """

    cell: str
    fraction: Optional[float]
    values: tuple[float, ...]
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    victim_mean: float
    disconnected_mean: float
    filtered_fraction: float

    @property
    def trials(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class ExperimentResult:
    """The aggregated grid: ``stats[fraction_index][cell_index]``.

    ``trials_per_cell`` is the spec's configured trial count;
    ``trial_counts`` holds the trials actually evaluated per fraction,
    which early stopping may leave below the configured count.
    """

    fractions: tuple[Optional[float], ...]
    cell_names: tuple[str, ...]
    stats: tuple[tuple[CellStats, ...], ...]
    trials_per_cell: int
    trial_counts: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.trial_counts:
            object.__setattr__(
                self,
                "trial_counts",
                (self.trials_per_cell,) * len(self.fractions),
            )

    def cell(
        self, cell: str, fraction: Optional[float] = None
    ) -> CellStats:
        """Look up one grid coordinate by cell name and fraction."""
        try:
            cell_index = self.cell_names.index(cell)
        except ValueError:
            raise ReproError(
                f"no cell named {cell!r}; have {list(self.cell_names)}"
            ) from None
        if fraction is None and len(self.fractions) == 1:
            fraction_index = 0
        else:
            try:
                fraction_index = self.fractions.index(fraction)
            except ValueError:
                raise ReproError(
                    f"no fraction {fraction!r}; have {list(self.fractions)}"
                ) from None
        return self.stats[fraction_index][cell_index]

    def render(self) -> str:
        """A fixed-width grid: one row per fraction, one block per cell."""
        width = max(len(name) for name in self.cell_names)
        lines = [
            f"{'validating':>11}  "
            + "  ".join(f"{name:>{max(width, 22)}}" for name in self.cell_names)
        ]
        for fraction_index, fraction in enumerate(self.fractions):
            label = "all" if fraction is None else f"{100 * fraction:.0f}%"
            blocks = []
            for cell_stats in self.stats[fraction_index]:
                blocks.append(
                    f"{100 * cell_stats.mean:6.1f}% "
                    f"[{100 * cell_stats.ci_low:5.1f}, "
                    f"{100 * cell_stats.ci_high:5.1f}]"
                )
            lines.append(
                f"{label:>11}  "
                + "  ".join(
                    f"{block:>{max(width, 22)}}" for block in blocks
                )
            )
        if any(
            count != self.trials_per_cell for count in self.trial_counts
        ):
            counts = ", ".join(
                f"{'all' if f is None else f'{100 * f:.0f}%'}: {count}"
                for f, count in zip(self.fractions, self.trial_counts)
            )
            lines.append(
                f"(early-stopped; trials per fraction — {counts}; "
                f"cap {self.trials_per_cell}; "
                f"mean capture [95% bootstrap CI of the mean])"
            )
        else:
            lines.append(
                f"({self.trials_per_cell} trials per cell; "
                f"mean capture [95% bootstrap CI of the mean])"
            )
        return "\n".join(lines)


def _streamed_count(
    spec: ExperimentSpec,
    grid: GridAccumulator,
    fraction_index: int,
) -> int:
    """A stopped fraction's trial count, recovered from its records:
    the run of consecutively complete trials from zero."""
    cells = range(len(spec.cells))
    count = 0
    while count < spec.trials and all(
        grid.cell(fraction_index, cell).has_trial(count)
        for cell in cells
    ):
        count += 1
    for cell in cells:
        stray = [
            t for t in grid.cell(fraction_index, cell).trial_indices()
            if t >= count
        ]
        if stray:
            raise ReproError(
                f"cell {spec.cells[cell].name!r} at fraction index "
                f"{fraction_index} has records past trial {count} "
                f"with earlier trials missing"
            )
    if count == 0:
        raise ReproError(
            f"no complete trials for fraction index {fraction_index}"
        )
    return count


def aggregate_records(
    spec: ExperimentSpec,
    records: Iterable[TrialRecord],
    *,
    bootstrap_resamples: int = 1000,
    confidence: float = 0.95,
    expected_trials: Optional[
        Union[Sequence[int], Callable[[], Sequence[int]]]
    ] = None,
) -> ExperimentResult:
    """Reduce (possibly out-of-order) records to the stats grid.

    ``expected_trials`` gives the per-fraction trial counts the record
    stream must contain — what early stopping decided — defaulting to
    ``spec.trials`` everywhere for ``stopping="none"`` specs.  A
    callable is resolved only after the stream is exhausted, so a
    streaming runner can hand over its stop tracker's final counts.
    When it is omitted for a ``stopping="ci"`` spec, the counts are
    derived from the stream itself: each fraction's count is its run
    of consecutively complete trials from zero (exactly what the
    runner emits), and any record beyond that run is an error — so
    ``aggregate_records(spec, runner.iter_records())`` works for every
    spec.

    The stream is consumed record by record into per-cell
    accumulators; only the per-trial outcome rows survive, never the
    records themselves.
    """
    grid = GridAccumulator(spec)
    for record in records:
        grid.add(record)

    if expected_trials is None:
        if spec.stopping == "none":
            counts = (spec.trials,) * len(spec.fractions)
        else:
            counts = tuple(
                _streamed_count(spec, grid, fraction_index)
                for fraction_index in range(len(spec.fractions))
            )
    elif callable(expected_trials):
        counts = tuple(expected_trials())
    else:
        counts = tuple(expected_trials)
    if len(counts) != len(spec.fractions):
        raise ReproError(
            f"expected_trials has {len(counts)} entries for "
            f"{len(spec.fractions)} fractions"
        )

    rows: list[tuple[CellStats, ...]] = []
    for fraction_index, fraction in enumerate(spec.fractions):
        expected = counts[fraction_index]
        row: list[CellStats] = []
        for cell_index, cell in enumerate(spec.cells):
            # Rows are (attacker, victim, disconnected, filtered)
            # tuples in trial order; ordered_rows raises — with the
            # exact incompleteness message — when trials are missing.
            ordered = grid.cell(fraction_index, cell_index).ordered_rows(
                expected
            )
            values = tuple(r[0] for r in ordered)
            mean = statistics.mean(values)
            stdev = statistics.stdev(values) if len(values) > 1 else 0.0
            ci_low, ci_high = _bootstrap_ci(
                values,
                random.Random(
                    _bootstrap_seed(spec.seed, fraction_index, cell_index)
                ),
                bootstrap_resamples,
                confidence,
            )
            row.append(
                CellStats(
                    cell=cell.name,
                    fraction=fraction,
                    values=values,
                    mean=mean,
                    stdev=stdev,
                    ci_low=ci_low,
                    ci_high=ci_high,
                    victim_mean=statistics.mean(r[1] for r in ordered),
                    disconnected_mean=statistics.mean(
                        r[2] for r in ordered
                    ),
                    filtered_fraction=(
                        sum(r[3] for r in ordered) / len(ordered)
                    ),
                )
            )
        rows.append(tuple(row))
    return ExperimentResult(
        fractions=spec.fractions,
        cell_names=tuple(cell.name for cell in spec.cells),
        stats=tuple(rows),
        trials_per_cell=spec.trials,
        trial_counts=counts,
    )
