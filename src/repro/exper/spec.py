"""Experiment specifications and deterministic trial materialization.

An :class:`ExperimentSpec` is the declarative description of a whole
study: a tuple of :class:`~repro.exper.scenarios.ScenarioCell` grid
cells, a tuple of validating-AS fractions, a trial count, and a seed.
From a spec and a topology, :func:`materialize_trials` produces the
fully-specified, self-contained :class:`TrialSpec` list the executors
consume.  All randomness is drawn *here*, in the driver process — the
expensive part (route propagation) is pure given a trial, which is
what makes the serial and multiprocessing executors byte-identical.

Two seeding disciplines are supported:

* ``"derived"`` (default) — every trial's seed is derived from
  ``(seed, fraction_index, trial_index)`` through a keyed blake2b
  digest, so any trial can be regenerated in isolation (the property
  future sharded runs need).
* ``"stream"`` — all trials draw from one sequential
  :class:`random.Random` stream, fractions outer, trials inner.  This
  exists to reproduce, bit for bit, the numbers of the hand-rolled
  study loops this engine replaced (see
  :mod:`repro.analysis.hijack_eval` and
  :mod:`repro.analysis.deployment`).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Union

from ..bgp.attacks import coerce_engine
from ..bgp.topology import AsTopology
from ..netbase import Prefix
from ..netbase.errors import ReproError
from ..rpki.vrp import Vrp
from .scenarios import (
    AnyAsPairSampler,
    AttackConfig,
    CustomRoa,
    FixedPairSampler,
    PartialCoverageRoa,
    RoaPolicy,
    ScenarioCell,
    StubPairSampler,
    VictimAttackerSampler,
    policy_from_name,
)

__all__ = [
    "EXECUTORS",
    "ExperimentSpec",
    "TrialSpec",
    "derive_trial_seed",
    "iter_trials",
    "materialize_trials",
]

_SEEDINGS = ("derived", "stream")
_STOPPINGS = ("none", "ci")

#: Every executor a spec (or runner) may name.  ``"auto"`` resolves at
#: run time to ``"serial"`` or ``"process"`` depending on available
#: parallelism (see :func:`repro.exper.runner.resolve_executor`).
EXECUTORS = ("serial", "process", "sharded", "auto")


def derive_trial_seed(seed: int, fraction_index: int, trial_index: int) -> int:
    """Deterministic, order-independent per-trial seed.

    A keyed digest rather than arithmetic so that nearby (seed, trial)
    coordinates never produce correlated :class:`random.Random` states.
    """
    key = f"repro.exper/{seed}/{fraction_index}/{trial_index}".encode()
    return int.from_bytes(
        hashlib.blake2b(key, digest_size=8).digest(), "big"
    )


@dataclass(frozen=True)
class TrialSpec:
    """One fully-drawn trial: everything a worker needs but the grid.

    Attributes:
        fraction_index: index into the spec's ``fractions``.
        trial_index: 0-based trial number within that fraction.
        victim: the legitimate origin AS.
        attackers: the hijacker cast (cells use a prefix of it).
        validating_ases: the sampled validator set, or ``None`` for
            universal validation.
        tie_seed: seeds the tie-break RNG shared by the trial's cells.
        trial_bits: per-trial random word for policies that flip coins
            (0 when no cell needs it).
    """

    fraction_index: int
    trial_index: int
    victim: int
    attackers: tuple[int, ...]
    validating_ases: Optional[frozenset[int]]
    tie_seed: int
    trial_bits: int = 0


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment grid.

    Attributes:
        cells: the (attack × ROA policy) grid cells, evaluated per
            trial in order with a shared tie-break RNG (a paired
            design: every cell sees the same cast and the same luck).
        trials: trials per fraction.
        seed: master seed.
        fractions: validating-AS fractions; ``None`` means universal
            validation (no validator sampling at all).
        sampler: how the (victim, attackers) cast is drawn.
        victim_prefix: the prefix the victim announces.
        attack_prefix: the subprefix the attacker announces; ``None``
            derives ``victim_prefix`` extended by 8 bits.
        seeding: ``"derived"`` or ``"stream"`` (see module docstring).
        engine: propagation backend — ``"object"`` (the readable
            bucketed BFS) or ``"array"`` (the flat-array engine that
            makes CAIDA-scale grids practical).  The two are
            bit-identical, so this is purely a speed knob.
        executor: the default execution strategy — ``"serial"``,
            ``"process"``, ``"sharded"``, or ``"auto"`` (pick serial
            or process from available parallelism).  All executors
            produce byte-identical results, so — like ``engine`` —
            this is purely a speed/topology knob: it round-trips
            through JSON but is *excluded* from :meth:`spec_hash`, so
            runs of the same grid under different executors share a
            run identity and merge cleanly.
        stopping: adaptive early stopping — ``"none"`` (run exactly
            ``trials`` everywhere; byte-identical to the pre-stopping
            engine) or ``"ci"`` (a fraction stops early once *every*
            cell's bootstrap CI for the mean is narrower than
            ``stop_ci_width``).  Stopping decisions are a pure
            function of completed-trial prefixes, so every executor
            stops at the same trial count with the same records; a
            trial that does run is evaluated identically either way.
        stop_ci_width: the CI-width threshold (absolute capture
            fraction) for ``stopping="ci"``.
        stop_min_trials: trials a fraction must complete before the
            first stopping check.
        stop_check_every: stopping is re-checked every this many
            trials past the minimum (checks cost a bootstrap).
    """

    cells: tuple[ScenarioCell, ...]
    trials: int
    seed: int = 0
    fractions: tuple[Optional[float], ...] = (None,)
    sampler: VictimAttackerSampler = field(default_factory=StubPairSampler)
    victim_prefix: Prefix = field(
        default_factory=lambda: Prefix.parse("168.122.0.0/16")
    )
    attack_prefix: Optional[Prefix] = None
    seeding: str = "derived"
    engine: str = "object"
    executor: str = "serial"
    stopping: str = "none"
    stop_ci_width: float = 0.05
    stop_min_trials: int = 16
    stop_check_every: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))
        object.__setattr__(self, "fractions", tuple(self.fractions))
        if not self.cells:
            raise ReproError("an experiment needs at least one cell")
        if self.trials < 1:
            raise ReproError("an experiment needs at least one trial")
        if not self.fractions:
            raise ReproError("an experiment needs at least one fraction")
        for fraction in self.fractions:
            if fraction is not None and not 0.0 <= fraction <= 1.0:
                raise ReproError(f"fraction {fraction!r} outside [0, 1]")
        if self.seeding not in _SEEDINGS:
            raise ReproError(
                f"unknown seeding {self.seeding!r}; expected {_SEEDINGS}"
            )
        coerce_engine(self.engine)
        if self.executor not in EXECUTORS:
            raise ReproError(
                f"unknown executor {self.executor!r}; "
                f"expected {EXECUTORS}"
            )
        if self.stopping not in _STOPPINGS:
            raise ReproError(
                f"unknown stopping {self.stopping!r}; expected {_STOPPINGS}"
            )
        if not self.stop_ci_width > 0.0:
            raise ReproError("stop_ci_width must be positive")
        if self.stop_min_trials < 2:
            raise ReproError("stop_min_trials must be at least 2")
        if self.stop_check_every < 1:
            raise ReproError("stop_check_every must be positive")
        names = [cell.name for cell in self.cells]
        if len(set(names)) != len(names):
            raise ReproError(f"duplicate cell names in {names}")
        attack = self.effective_attack_prefix
        if not self.victim_prefix.covers(attack):
            raise ReproError(
                f"attack prefix {attack} outside victim's "
                f"{self.victim_prefix}"
            )

    @classmethod
    def grid(
        cls,
        attacks: Iterable[Union[AttackConfig, str]],
        policies: Iterable[RoaPolicy],
        **kwargs,
    ) -> "ExperimentSpec":
        """The full cross product, attacks-major."""
        attack_list = [
            a if isinstance(a, AttackConfig) else AttackConfig(a)
            for a in attacks
        ]
        policy_list = list(policies)
        cells = tuple(
            ScenarioCell(attack, policy)
            for attack in attack_list
            for policy in policy_list
        )
        return cls(cells=cells, **kwargs)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def effective_attack_prefix(self) -> Prefix:
        if self.attack_prefix is not None:
            return self.attack_prefix
        length = self.victim_prefix.length + 8
        if length > self.victim_prefix.max_family_length:
            raise ReproError(
                f"cannot derive a /{length} attack subprefix of "
                f"{self.victim_prefix}"
            )
        return Prefix(
            self.victim_prefix.family, self.victim_prefix.value, length
        )

    @property
    def max_attackers(self) -> int:
        return max(cell.attack.attackers for cell in self.cells)

    @property
    def needs_trial_bits(self) -> bool:
        return any(cell.policy.needs_trial_bits for cell in self.cells)

    @property
    def total_trials(self) -> int:
        return self.trials * len(self.fractions)

    def cell_index(self, name: str) -> int:
        for index, cell in enumerate(self.cells):
            if cell.name == name:
                return index
        raise ReproError(f"no cell named {name!r}")

    # ------------------------------------------------------------------
    # JSON round trip (the CLI's --spec format)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> dict:
        return {
            "cells": [_cell_to_json(cell) for cell in self.cells],
            "trials": self.trials,
            "seed": self.seed,
            "fractions": list(self.fractions),
            "sampler": _sampler_to_json(self.sampler),
            "victim_prefix": str(self.victim_prefix),
            "attack_prefix": (
                None if self.attack_prefix is None else str(self.attack_prefix)
            ),
            "seeding": self.seeding,
            "engine": self.engine,
            "executor": self.executor,
            "stopping": self.stopping,
            "stop_ci_width": self.stop_ci_width,
            "stop_min_trials": self.stop_min_trials,
            "stop_check_every": self.stop_check_every,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_json_dict(), indent=indent)

    def spec_hash(self) -> str:
        """A stable digest of the whole spec (canonical JSON form).

        Two specs share a hash exactly when their JSON round-trip
        forms are identical — except for ``executor``, which is an
        execution strategy rather than part of the experiment's
        identity: serial, process, and sharded runs of the same grid
        must share a hash so their records merge and resume across
        executors.  Durable run records carry the hash so a sink can
        refuse to mix records from different experiments (and resume
        can refuse a mismatched spec).
        """
        identity = self.to_json_dict()
        identity.pop("executor", None)
        canonical = json.dumps(
            identity, sort_keys=True, separators=(",", ":")
        )
        return hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()

    @classmethod
    def from_json_dict(cls, data: dict) -> "ExperimentSpec":
        try:
            cells = tuple(_cell_from_json(raw) for raw in data["cells"])
            trials = int(data["trials"])
            attack_prefix = data.get("attack_prefix")
            return cls(
                cells=cells,
                trials=trials,
                seed=int(data.get("seed", 0)),
                fractions=tuple(
                    None if f is None else float(f)
                    for f in data.get("fractions", [None])
                ),
                sampler=_sampler_from_json(data.get("sampler", "stubs")),
                victim_prefix=Prefix.parse(
                    data.get("victim_prefix", "168.122.0.0/16")
                ),
                attack_prefix=(
                    None if attack_prefix is None
                    else Prefix.parse(attack_prefix)
                ),
                seeding=data.get("seeding", "derived"),
                engine=data.get("engine", "object"),
                executor=data.get("executor", "serial"),
                stopping=data.get("stopping", "none"),
                stop_ci_width=float(data.get("stop_ci_width", 0.05)),
                stop_min_trials=int(data.get("stop_min_trials", 16)),
                stop_check_every=int(data.get("stop_check_every", 8)),
            )
        except KeyError as exc:
            raise ReproError(f"spec JSON missing key {exc}") from None
        except (TypeError, ValueError) as exc:
            raise ReproError(f"bad spec JSON value: {exc}") from None

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"bad spec JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ReproError("spec JSON must be an object")
        return cls.from_json_dict(data)


def _cell_to_json(cell: ScenarioCell) -> dict:
    data: dict = {"kind": cell.attack.kind.value}
    if cell.attack.attackers != 1:
        data["attackers"] = cell.attack.attackers
    if cell.attack.prepend:
        data["prepend"] = cell.attack.prepend
    data["policy"] = _policy_to_json(cell.policy)
    return data


def _cell_from_json(data: dict) -> ScenarioCell:
    if not isinstance(data, dict) or "kind" not in data:
        raise ReproError(f"bad cell entry {data!r}: needs a 'kind'")
    try:
        attack = AttackConfig(
            data["kind"],
            attackers=int(data.get("attackers", 1)),
            prepend=int(data.get("prepend", 0)),
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"bad cell entry {data!r}: {exc}") from None
    return ScenarioCell(attack, _policy_from_json(data.get("policy", "none")))


def _policy_to_json(policy: RoaPolicy) -> Union[str, dict]:
    if isinstance(policy, CustomRoa):
        return {
            "custom": [
                {
                    "prefix": str(vrp.prefix),
                    "max_length": vrp.max_length,
                    "asn": vrp.asn,
                }
                for vrp in policy.vrps
            ],
            "name": policy.name,
        }
    if isinstance(policy, PartialCoverageRoa):
        # The dict form, not the display label: the label renders the
        # coverage with %g, which would silently round it on round trip.
        return {
            "partial": {
                "base": _policy_to_json(policy.base),
                "coverage": policy.coverage,
            }
        }
    return policy.label


def _policy_from_json(data: Union[str, dict]) -> RoaPolicy:
    if isinstance(data, str):
        return policy_from_name(data)
    if isinstance(data, dict) and "partial" in data:
        partial = data["partial"]
        if not isinstance(partial, dict) or "base" not in partial:
            raise ReproError(f"bad partial policy entry {data!r}")
        return PartialCoverageRoa(
            _policy_from_json(partial["base"]),
            float(partial.get("coverage", 0.5)),
        )
    if isinstance(data, dict) and "custom" in data:
        try:
            vrps = tuple(
                Vrp(
                    Prefix.parse(row["prefix"]),
                    int(row["max_length"]),
                    int(row["asn"]),
                )
                for row in data["custom"]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"bad custom VRP row: {exc}") from None
        return CustomRoa(vrps, name=data.get("name", "custom"))
    raise ReproError(f"bad policy entry {data!r}")


def _sampler_to_json(sampler: VictimAttackerSampler) -> Union[str, dict]:
    if isinstance(sampler, StubPairSampler):
        return "stubs"
    if isinstance(sampler, AnyAsPairSampler):
        return "any"
    if isinstance(sampler, FixedPairSampler):
        return {"victim": sampler.victim, "attackers": list(sampler.attackers)}
    raise ReproError(f"sampler {sampler!r} has no JSON form")


def _sampler_from_json(data: Union[str, dict]) -> VictimAttackerSampler:
    if data == "stubs":
        return StubPairSampler()
    if data == "any":
        return AnyAsPairSampler()
    if isinstance(data, dict) and "victim" in data:
        return FixedPairSampler(
            int(data["victim"]),
            tuple(int(asn) for asn in data.get("attackers", ())),
        )
    raise ReproError(f"bad sampler entry {data!r}")


# ----------------------------------------------------------------------
# Trial materialization
# ----------------------------------------------------------------------


def iter_trials(
    spec: ExperimentSpec,
    topology: AsTopology,
    *,
    wants: Optional[Callable[[int, int], bool]] = None,
) -> Iterator[TrialSpec]:
    """Draw the spec's trials lazily, in deterministic order.

    All RNG consumption happens here, in fractions-outer, trials-inner
    order; the per-trial draw order is fixed (cast, validators, coin
    word, tie seed) so both seeding disciplines are stable contracts.

    Laziness is what keeps driver memory flat on grids with millions
    of trials: the runner pulls trials into bounded batches instead of
    materializing the full list.

    ``wants(fraction_index, trial_index)`` lets an early-stopping
    consumer decline trials before they are drawn.  Under
    ``"derived"`` seeding a declined trial is skipped outright — its
    seed is self-contained, so nothing downstream shifts.  Under
    ``"stream"`` seeding every trial's draws depend on all draws
    before it, so a declined trial is still materialized (advancing
    the shared RNG) and only withheld from the stream; later
    fractions' trials stay bit-identical either way.
    """
    pool = spec.sampler.population(topology)
    needs_validators = any(f is not None for f in spec.fractions)
    all_pool: tuple[int, ...] = ()
    if needs_validators:
        all_pool = tuple(sorted(topology.ases))
    stream_rng = (
        random.Random(spec.seed) if spec.seeding == "stream" else None
    )

    for fraction_index, fraction in enumerate(spec.fractions):
        for trial_index in range(spec.trials):
            wanted = wants is None or wants(fraction_index, trial_index)
            if not wanted and stream_rng is None:
                continue  # derived seeding: skip without drawing
            if stream_rng is not None:
                rng = stream_rng
            else:
                rng = random.Random(
                    derive_trial_seed(spec.seed, fraction_index, trial_index)
                )
            victim, attackers = spec.sampler.sample(
                pool, rng, spec.max_attackers
            )
            validators: Optional[frozenset[int]] = None
            if fraction is not None:
                count = round(fraction * len(all_pool))
                validators = frozenset(rng.sample(all_pool, count))
            trial_bits = (
                rng.getrandbits(64) if spec.needs_trial_bits else 0
            )
            tie_seed = rng.getrandbits(32)
            if not wanted:
                continue  # stream RNG advanced; trial withheld
            yield TrialSpec(
                fraction_index=fraction_index,
                trial_index=trial_index,
                victim=victim,
                attackers=attackers,
                validating_ases=validators,
                tie_seed=tie_seed,
                trial_bits=trial_bits,
            )


def materialize_trials(
    spec: ExperimentSpec, topology: AsTopology
) -> list[TrialSpec]:
    """Every trial of the spec as a list — :func:`iter_trials`, eager.

    Kept for small grids and tests; executors stream from
    :func:`iter_trials` so memory stays flat.
    """
    return list(iter_trials(spec, topology))
