"""Sharded execution: partition a grid, dispatch shards, union them.

A sharded run splits an :class:`~repro.exper.spec.ExperimentSpec`'s
(fraction, trial) grid into *contiguous* slices of its canonical
fractions-outer, trials-inner order (:func:`plan_shards`), evaluates
each slice as an independent worker (:func:`run_shard`) streaming into
its own durable :class:`~repro.results.sinks.JsonlSink` run, and
re-streams the shard records back to the driver **in shard order**
(:class:`ShardCoordinator`).  Contiguity is the load-bearing choice:
each shard evaluates its slice serially in grid order, and shard files
sort by grid coordinate, so concatenating completed shards in shard
order reproduces exactly the serial executor's record stream — the
coordinator's sink file is byte-identical to a serial run's, and
``merge_runs`` over the shard partials is too.

Determinism under ``"derived"`` seeding is free (every trial's seed is
self-contained).  Under ``"stream"`` seeding each worker replays the
*whole* sequential RNG stream from the start and withholds trials
outside its slice — wasteful in draws, but byte-identical by
construction (:func:`~repro.exper.spec.iter_trials` already implements
the withhold discipline for early stopping).

Failure semantics: a shard that dies — killed, crashed, or silent past
the progress timeout — is retried up to ``retries`` times, resuming
its own partial shard file (complete trials are skipped; the partial
tail is truncated), so a retried shard converges on the same bytes an
undisturbed one writes.  The coordinator babysits workers through a
deliberately narrow transport interface (start/poll/stop/collect);
:class:`LocalShardTransport` runs them as local processes sharing the
compiled topology blob through one shared-memory segment, and the
serve tier's ``HttpShardTransport`` dispatches them to remote worker
hosts over HTTP (the layering DAG forbids importing it from here; the
CLI wires it in).

Fault injection for the test suite and CI rides two channels.  The
legacy ``REPRO_SHARD_FAULT`` environment variable —
``"<shard>:<kill|raise>:<after-records>"`` — is honoured only on a
shard's first attempt, so a faulted run exercises death *and*
recovery.  The general mechanism is a :class:`~repro.faults.FaultPlan`
carried via :data:`~repro.faults.PLAN_ENV`: workers install it at
entry (:func:`~repro.faults.install_from_env`, resetting
fork-inherited hit counters) and :func:`run_shard` fires the
``exper.shard.record`` injection point after every record, tagged
with ``shard`` and ``attempt`` so plans can scope faults to first
attempts and specific shards.  Retry pacing is a
:class:`~repro.faults.RetryPolicy` — deterministic
backoff-with-jitter keyed on the run base and shard index — replacing
the old immediate-relaunch loop (the default policy keeps zero delay,
so existing behaviour is unchanged unless a policy is passed).
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Optional, Union

from ..bgp.fastprop import PropagationWorkspace
from ..bgp.topology import AsTopology, CompiledTopology
from ..faults import RetryPolicy, fire, install_from_env
from ..netbase.errors import ReproError
from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry
from ..results.sinks import (
    JsonlSink,
    RunHeader,
    check_header_compatible,
    read_run,
)
from ..results.store import ResultsStore, shard_run_id
from .evaluate import TrialRecord, evaluate_trials
from .spec import ExperimentSpec, iter_trials

__all__ = [
    "FAULT_ENV",
    "LocalShardTransport",
    "Shard",
    "ShardCoordinator",
    "plan_shards",
    "run_shard",
]

#: Environment variable carrying a one-shot fault injection directive:
#: ``"<shard-index>:<kill|raise>:<after-records>"``.  Applied by shard
#: workers on attempt 0 only, so retries recover.
FAULT_ENV = "REPRO_SHARD_FAULT"


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of a spec's (fraction, trial) grid.

    ``ranges`` is a tuple of ``(fraction_index, start, stop)``
    half-open trial ranges; together the plan's shards tile the grid's
    canonical fractions-outer, trials-inner order without gaps or
    overlaps, and each shard's ranges are themselves contiguous in
    that order — the property the coordinator's ordered union relies
    on.
    """

    shard_index: int
    shard_count: int
    ranges: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "ranges",
            tuple(tuple(entry) for entry in self.ranges),
        )
        if not 0 <= self.shard_index < self.shard_count:
            raise ReproError(
                f"shard index {self.shard_index} outside plan of "
                f"{self.shard_count}"
            )
        for entry in self.ranges:
            if len(entry) != 3:
                raise ReproError(f"bad shard range {entry!r}")
            fraction_index, start, stop = entry
            if fraction_index < 0 or not 0 <= start < stop:
                raise ReproError(f"bad shard range {entry!r}")

    @property
    def trial_count(self) -> int:
        return sum(stop - start for _, start, stop in self.ranges)

    def contains(self, fraction_index: int, trial_index: int) -> bool:
        """Is this grid coordinate inside the shard's slice?"""
        for f, start, stop in self.ranges:
            if f == fraction_index and start <= trial_index < stop:
                return True
        return False

    def run_id(self, base: str) -> str:
        """This shard's canonical run id under ``base``."""
        return shard_run_id(base, self.shard_index, self.shard_count)

    def to_json_dict(self) -> dict:
        return {
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "ranges": [list(entry) for entry in self.ranges],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "Shard":
        try:
            return cls(
                shard_index=int(data["shard_index"]),
                shard_count=int(data["shard_count"]),
                ranges=tuple(
                    (int(f), int(start), int(stop))
                    for f, start, stop in data["ranges"]
                ),
            )
        except KeyError as exc:
            raise ReproError(f"shard JSON missing key {exc}") from None
        except (TypeError, ValueError) as exc:
            raise ReproError(f"bad shard JSON value: {exc}") from None


def plan_shards(spec: ExperimentSpec, shards: int) -> tuple[Shard, ...]:
    """Partition the spec's grid into near-even contiguous shards.

    The grid's ``total_trials`` coordinates — fractions outer, trials
    inner — are cut into at most ``shards`` contiguous slices whose
    sizes differ by at most one (earlier shards take the remainder).
    Plans never contain empty shards: a request for more shards than
    trials yields one shard per trial.
    """
    if shards < 1:
        raise ReproError("shards must be positive")
    total = spec.total_trials
    count = min(shards, total)
    size, extra = divmod(total, count)
    plan = []
    cursor = 0
    for shard_index in range(count):
        take = size + (1 if shard_index < extra else 0)
        lo, hi = cursor, cursor + take
        cursor = hi
        ranges = []
        for fraction_index in range(len(spec.fractions)):
            base = fraction_index * spec.trials
            start = max(lo, base)
            stop = min(hi, base + spec.trials)
            if start < stop:
                ranges.append((fraction_index, start - base, stop - base))
        plan.append(
            Shard(
                shard_index=shard_index,
                shard_count=count,
                ranges=tuple(ranges),
            )
        )
    return tuple(plan)


def _parse_fault(
    value: Optional[str], shard_index: int, attempt: int
) -> Optional[tuple[str, int]]:
    """Decode :data:`FAULT_ENV` for one worker; ``None`` when inert.

    Faults fire on a shard's first attempt only — the whole point is
    proving the retry converges.
    """
    if not value or attempt > 0:
        return None
    parts = value.split(":")
    if len(parts) != 3:
        raise ReproError(
            f"bad {FAULT_ENV} {value!r}: expected "
            f"'<shard>:<kill|raise>:<after-records>'"
        )
    try:
        target, mode, after = int(parts[0]), parts[1], int(parts[2])
    except ValueError:
        raise ReproError(f"bad {FAULT_ENV} {value!r}") from None
    if mode not in ("kill", "raise"):
        raise ReproError(
            f"bad {FAULT_ENV} mode {mode!r}: expected 'kill' or 'raise'"
        )
    if target != shard_index:
        return None
    return mode, after


def _trigger_fault(mode: str, shard: Shard) -> None:
    if mode == "kill":
        import signal

        os.kill(os.getpid(), signal.SIGKILL)
    raise ReproError(
        f"injected fault: shard {shard.shard_index} raised mid-stream"
    )


def run_shard(
    topology: AsTopology,
    spec: ExperimentSpec,
    shard: Shard,
    *,
    sink: Optional[JsonlSink] = None,
    resume: bool = False,
    finished: frozenset = frozenset(),
    header: Optional[RunHeader] = None,
    eval_topology=None,
    workspace: Optional[PropagationWorkspace] = None,
    on_record: Optional[Callable[[TrialRecord], None]] = None,
    fault: Optional[tuple[str, int]] = None,
    attempt: int = 0,
) -> int:
    """Evaluate one shard serially, in grid order; return records written.

    ``topology`` materializes trials (it must be the object form —
    samplers draw from it); ``eval_topology`` (default: ``topology``)
    is what trials evaluate on, so array-engine workers pass their
    attached :class:`~repro.bgp.topology.CompiledTopology` and reuse
    ``workspace`` across trials.  ``finished`` grid coordinates —
    trials the coordinator already holds records for — are skipped
    (derived seeding) or drawn-and-withheld (stream seeding), exactly
    like a resumed run.  With ``resume=True`` the sink's existing
    complete trials are treated the same way, so a retried shard picks
    up where its dead predecessor flushed.

    ``fault`` is the decoded :data:`FAULT_ENV` directive; after the
    given number of records the worker kills itself or raises.  The
    installed :class:`~repro.faults.FaultPlan` (if any) is consulted
    after every record at the ``exper.shard.record`` injection point,
    with ``shard``/``attempt`` context so plans can target specific
    shards and first attempts only.
    """
    if header is None:
        header = RunHeader.for_spec(spec, topology)
    done = set(finished)
    if resume and sink is not None:
        prior, records = sink.resume_scan(spec)
        if prior is not None:
            check_header_compatible(prior, header, "shard resume source")
            by_trial: dict[tuple[int, int], int] = {}
            for record in records:
                key = (record.fraction_index, record.trial_index)
                by_trial[key] = by_trial.get(key, 0) + 1
            done.update(
                key
                for key, cells in by_trial.items()
                if cells == len(spec.cells)
            )
    if sink is not None:
        sink.begin(header)

    def wants(fraction_index: int, trial_index: int) -> bool:
        return (
            shard.contains(fraction_index, trial_index)
            and (fraction_index, trial_index) not in done
        )

    trials = iter_trials(spec, topology, wants=wants)
    written = 0
    countdown = fault[1] if fault is not None else None
    for record in evaluate_trials(
        eval_topology if eval_topology is not None else topology,
        spec,
        trials,
        workspace=workspace,
    ):
        if sink is not None:
            sink.write(record)
        written += 1
        if on_record is not None:
            on_record(record)
        if countdown is not None:
            countdown -= 1
            if countdown <= 0:
                _trigger_fault(fault[0], shard)
        fire(
            "exper.shard.record",
            shard=shard.shard_index,
            attempt=attempt,
        )
    if sink is not None:
        sink.finish(())
    return written


# ----------------------------------------------------------------------
# Local worker processes
# ----------------------------------------------------------------------


def _run_attached(
    buf,
    spec: ExperimentSpec,
    shard: Shard,
    sink: JsonlSink,
    finished: frozenset,
    attempt: int,
    header: RunHeader,
) -> None:
    """Run one shard over an attached blob.

    Everything derived from ``buf`` — the compiled topology, the
    reconstructed object form, the workspace — stays local to this
    frame, so by the time the caller closes its shared-memory handle
    no exported buffer views remain.
    """
    compiled = CompiledTopology.from_blob(buf)
    topology = compiled.to_topology()
    eval_topology = compiled if spec.engine == "array" else topology
    workspace = (
        PropagationWorkspace(compiled) if spec.engine == "array" else None
    )
    fault = _parse_fault(
        os.environ.get(FAULT_ENV), shard.shard_index, attempt
    )
    run_shard(
        topology,
        spec,
        shard,
        sink=sink,
        resume=True,
        finished=finished,
        header=header,
        eval_topology=eval_topology,
        workspace=workspace,
        fault=fault,
        attempt=attempt,
    )


def _local_shard_main(
    payload: tuple,
    spec: ExperimentSpec,
    shard: Shard,
    path: str,
    finished: frozenset,
    attempt: int,
    header: RunHeader,
) -> None:
    """Entry point of one local shard worker process.

    Attaches the compiled topology (shared memory or pickled blob)
    and runs the shard with resume — the file it streams into doubles
    as its own crash journal.  Failures leave their reason in
    ``<path>.err`` for the coordinator and exit nonzero via
    :func:`os._exit` (skipping interpreter teardown, which would
    otherwise spray ``BufferError`` noise from shared-memory views
    still referenced by the exception's traceback); progress
    heartbeats are simply the sink's flushed writes (the coordinator
    watches the file grow).
    """
    kind, value = payload
    # Fresh fault-plan hit counters per attempt: forked workers inherit
    # the coordinator's installed plan, so re-parse it from the
    # environment to start counting this attempt's hits from zero.
    install_from_env()
    shm = None
    if kind == "shm":
        from multiprocessing import shared_memory

        try:
            shm = shared_memory.SharedMemory(name=value, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            shm = shared_memory.SharedMemory(name=value)
    sink = JsonlSink(path)
    try:
        _run_attached(
            shm.buf if shm is not None else value,
            spec, shard, sink, finished, attempt, header,
        )
    except BaseException as exc:
        Path(path + ".err").write_text(
            f"{type(exc).__name__}: {exc}", encoding="utf-8"
        )
        sink.close()
        os._exit(1)
    sink.close()
    if shm is not None:
        try:
            shm.close()
        except BufferError:
            # A stray view survived; the mapping dies with the process.
            os._exit(0)


class _LocalJob:
    """Book-keeping for one running local worker process."""

    __slots__ = ("shard", "attempt", "process", "path", "size", "beat")

    def __init__(self, shard, attempt, process, path) -> None:
        self.shard = shard
        self.attempt = attempt
        self.process = process
        self.path = path
        self.size = -1
        self.beat = time.monotonic()


class LocalShardTransport:
    """Shard workers as local processes, topology shared once.

    Implements the coordinator's transport interface:

    * ``start(shard, path, finished, attempt, header)`` — launch a
      worker streaming into ``path``;
    * ``poll()`` — ``{shard_index: ("done", None) | ("failed", reason)
      | ("running", seconds_since_progress)}`` for every started
      shard; progress is the shard file growing (every record is
      flushed, so a live worker beats on every trial);
    * ``stop(shard_index)`` — kill a worker (timeout reassignment);
    * ``collect(shard, path)`` — records are already at ``path``
      (workers write in place), so this just forgets the job;
    * ``close()`` — kill stragglers and release the shared-memory
      segment.

    The compiled topology is published once, to one shared-memory
    segment every worker attaches zero-copy (blob-pickle fallback when
    shared memory is unavailable); ``last_shared_segment`` records the
    segment name for leak checks, mirroring the process executor.
    """

    def __init__(
        self,
        topology: AsTopology,
        spec: ExperimentSpec,
        *,
        mp_context=None,
    ) -> None:
        import multiprocessing

        self.topology = topology
        self.spec = spec
        self.last_shared_segment: Optional[str] = None
        self._payload: Optional[tuple] = None
        self._shm = None
        self._jobs: dict[int, _LocalJob] = {}
        self._ctx = mp_context or multiprocessing.get_context()

    def _ensure_payload(self) -> tuple:
        if self._payload is not None:
            return self._payload
        blob = self.topology.compiled().to_blob()
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=len(blob))
        except (ImportError, OSError):
            self._payload = ("blob", blob)
            return self._payload
        try:
            shm.buf[: len(blob)] = blob
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self._shm = shm
        self.last_shared_segment = shm.name
        self._payload = ("shm", shm.name)
        return self._payload

    def start(
        self,
        shard: Shard,
        path: Path,
        finished: frozenset,
        attempt: int,
        header: RunHeader,
    ) -> None:
        payload = self._ensure_payload()
        process = self._ctx.Process(
            target=_local_shard_main,
            args=(
                payload, self.spec, shard, str(path), finished,
                attempt, header,
            ),
            daemon=True,
        )
        process.start()
        self._jobs[shard.shard_index] = _LocalJob(
            shard, attempt, process, Path(path)
        )

    def poll(self) -> dict[int, tuple[str, object]]:
        now = time.monotonic()
        statuses: dict[int, tuple[str, object]] = {}
        for index in sorted(self._jobs):
            job = self._jobs[index]
            exitcode = job.process.exitcode
            if exitcode is None:
                try:
                    size = os.stat(job.path).st_size
                except OSError:
                    size = -1
                if size != job.size:
                    job.size = size
                    job.beat = now
                statuses[index] = ("running", now - job.beat)
            elif exitcode == 0:
                statuses[index] = ("done", None)
            else:
                statuses[index] = ("failed", self._failure_reason(job))
        return statuses

    def _failure_reason(self, job: _LocalJob) -> str:
        error_path = Path(str(job.path) + ".err")
        try:
            detail = error_path.read_text(encoding="utf-8").strip()
        except OSError:
            detail = ""
        code = job.process.exitcode
        what = (
            f"killed by signal {-code}" if code is not None and code < 0
            else f"exited {code}"
        )
        return f"worker {what}" + (f": {detail}" if detail else "")

    def stop(self, shard_index: int) -> None:
        """Kill a running worker (no-op once it has exited)."""
        job = self._jobs.get(shard_index)
        if job is None:
            return
        if job.process.exitcode is None:
            job.process.kill()
        job.process.join()

    def collect(self, shard: Shard, path: Path) -> None:
        """Finalize a completed shard: its records are already local."""
        job = self._jobs.pop(shard.shard_index, None)
        if job is not None:
            job.process.join()
        error_path = Path(str(path) + ".err")
        try:
            error_path.unlink()
        except OSError:
            pass

    def close(self) -> None:
        for index in sorted(self._jobs):
            self.stop(index)
        self._jobs.clear()
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass
            self._shm = None
        self._payload = None


# ----------------------------------------------------------------------
# The coordinator
# ----------------------------------------------------------------------


class _ShardMetrics:
    """The coordinator's ``exper.*`` shard-lifecycle instruments."""

    __slots__ = (
        "enabled", "shards_dispatched", "shards_completed",
        "shards_failed", "shards_retried", "inflight_shards",
        "shard_latency",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        view = registry.view("exper")
        self.enabled = registry.enabled
        self.shards_dispatched = view.counter("shards_dispatched")
        self.shards_completed = view.counter("shards_completed")
        self.shards_failed = view.counter("shards_failed")
        self.shards_retried = view.counter("shards_retried")
        self.inflight_shards = view.gauge("inflight_shards")
        self.shard_latency = view.histogram("shard_latency")


class ShardCoordinator:
    """Dispatch a shard plan and re-stream its records in grid order.

    The coordinator owns policy — launch order, the in-flight window,
    the progress timeout, retry/reassignment — and drives any object
    implementing the transport interface
    (:class:`LocalShardTransport` by default; the serve tier's
    ``HttpShardTransport`` for remote hosts).  Records are yielded
    strictly in shard order (shard *k+1* waits for *k* even if it
    finished first), each shard's sorted by grid coordinate, which by
    plan contiguity is exactly the serial executor's order.

    Shard runs live in ``store`` (a :class:`~repro.results.store
    .ResultsStore` root) under :func:`~repro.results.store
    .shard_run_id` names; with no store a temporary directory is used
    and removed when the stream completes — a crashed *coordinator*
    with a persistent store leaves resumable shard files behind, which
    is the multi-host resume story.

    ``finished`` coordinates (from the runner's resume scan) are
    neither re-evaluated by workers nor re-yielded from pre-existing
    shard files — the runner replays them from its own sink.

    Retry pacing is a :class:`~repro.faults.RetryPolicy` (``retry``;
    default ``RetryPolicy(retries=retries)``, whose zero base delay
    reproduces the historical immediate relaunch): a failed shard is
    re-queued but not redispatched before its deterministic
    backoff-with-jitter deadline, keyed on ``run_base`` and the shard
    index so schedules are reproducible run to run.

    ``progress`` is an observation-only callback: whenever shard state
    changes (dispatch, completion, retry, or growth of a running
    shard's local run file) it receives ``{shard_index: {"state": ...,
    "attempt": ..., "records": ...}}`` covering every shard of the
    plan.  The serve tier points it at
    :meth:`~repro.results.live.RunRegistry.update_shards` so
    ``GET /experiments/<run>`` shows per-shard progress while a
    sharded job runs.  It must not raise and cannot influence the
    record stream.
    """

    def __init__(
        self,
        topology: AsTopology,
        spec: ExperimentSpec,
        *,
        shards: int,
        store: Optional[Union[str, Path, ResultsStore]] = None,
        run_base: Optional[str] = None,
        transport=None,
        parallel: Optional[int] = None,
        retries: int = 2,
        retry: Optional[RetryPolicy] = None,
        timeout: float = 120.0,
        poll_interval: float = 0.02,
        finished: frozenset = frozenset(),
        registry: Optional[MetricsRegistry] = None,
        progress: Optional[Callable[[dict], None]] = None,
    ) -> None:
        if retries < 0:
            raise ReproError("retries must be non-negative")
        if timeout <= 0:
            raise ReproError("timeout must be positive")
        self.topology = topology
        self.spec = spec
        self.plan = plan_shards(spec, shards)
        if isinstance(store, (str, Path)):
            store = ResultsStore(store)
        self.store = store
        self.run_base = run_base or f"grid-{spec.spec_hash()[:12]}"
        self.transport = transport
        self.parallel = parallel or min(
            len(self.plan), os.cpu_count() or 1
        )
        self.retry = (
            retry if retry is not None else RetryPolicy(retries=retries)
        )
        self.retries = self.retry.retries
        self.timeout = timeout
        self.poll_interval = poll_interval
        self.finished = finished
        self.registry = registry
        self.progress = progress
        self.last_shared_segment: Optional[str] = None

    def records(self) -> Iterator[TrialRecord]:
        """Run the plan; yield every record in serial grid order."""
        metrics = _ShardMetrics(
            self.registry if self.registry is not None
            else get_registry()
        )
        tempdir = None
        store = self.store
        if store is None:
            tempdir = tempfile.TemporaryDirectory(prefix="repro-shards-")
            store = ResultsStore(tempdir.name)
        transport = self.transport
        owns_transport = transport is None
        if owns_transport:
            transport = LocalShardTransport(self.topology, self.spec)
        try:
            yield from self._pump(transport, store, metrics)
        finally:
            if owns_transport:
                transport.close()
            self.last_shared_segment = getattr(
                transport, "last_shared_segment", None
            )
            if tempdir is not None:
                tempdir.cleanup()

    def _pump(
        self,
        transport,
        store: ResultsStore,
        metrics: _ShardMetrics,
    ) -> Iterator[TrialRecord]:
        plan = self.plan
        header = RunHeader.for_spec(self.spec, self.topology)
        store.root.mkdir(parents=True, exist_ok=True)
        paths = {
            shard.shard_index: store.path(shard.run_id(self.run_base))
            for shard in plan
        }
        attempts = {shard.shard_index: 0 for shard in plan}
        started = {}
        pending: deque[int] = deque(range(len(plan)))
        not_before: dict[int, float] = {}
        inflight: set[int] = set()
        completed: set[int] = set()
        tracer = trace.get_tracer()
        next_to_yield = 0
        states = {shard.shard_index: "queued" for shard in plan}
        shard_records = {shard.shard_index: 0 for shard in plan}
        observed_sizes: dict[int, int] = {}

        def publish() -> None:
            if self.progress is None:
                return
            self.progress(
                {
                    index: {
                        "state": states[index],
                        "attempt": attempts[index],
                        "records": shard_records[index],
                    }
                    for index in states
                }
            )

        def observe_running(index: int) -> bool:
            """Refresh a running shard's record count from its file."""
            try:
                size = os.path.getsize(paths[index])
            except OSError:
                return False
            if observed_sizes.get(index) == size:
                return False
            observed_sizes[index] = size
            with open(paths[index], "rb") as handle:
                lines = handle.read().count(b"\n")
            shard_records[index] = max(0, lines - 1)  # header line
            return True

        def fail(index: int, reason: str) -> None:
            metrics.shards_failed.inc()
            attempts[index] += 1
            if not self.retry.allows(attempts[index]):
                states[index] = "failed"
                publish()
                raise ReproError(
                    f"shard {index} failed after {attempts[index]} "
                    f"attempts: {reason}"
                )
            states[index] = "queued"
            metrics.shards_retried.inc()
            delay = self.retry.backoff(
                attempts[index], token=f"{self.run_base}:{index}"
            )
            if delay > 0:
                not_before[index] = time.monotonic() + delay
            tracer.instant(
                "exper.shard_retried",
                shard=index,
                reason=reason,
                backoff=round(delay, 6),
            )
            pending.appendleft(index)

        while next_to_yield < len(plan):
            progressed = False
            while pending and len(inflight) < self.parallel:
                now = time.monotonic()
                position = next(
                    (
                        pos
                        for pos, candidate in enumerate(pending)
                        if not_before.get(candidate, 0.0) <= now
                    ),
                    None,
                )
                if position is None:
                    break  # every queued shard is still backing off
                index = pending[position]
                del pending[position]
                not_before.pop(index, None)
                transport.start(
                    plan[index], paths[index], self.finished,
                    attempts[index], header,
                )
                started[index] = time.perf_counter()
                inflight.add(index)
                states[index] = "running"
                metrics.shards_dispatched.inc()
                metrics.inflight_shards.set(len(inflight))
                tracer.instant(
                    "exper.shard_dispatched",
                    shard=index,
                    attempt=attempts[index],
                    trials=plan[index].trial_count,
                )
                progressed = True
            statuses = transport.poll()
            for index in sorted(inflight):
                status, detail = statuses.get(index, ("running", 0.0))
                if status == "running":
                    if (
                        isinstance(detail, (int, float))
                        and detail > self.timeout
                    ):
                        transport.stop(index)
                        inflight.discard(index)
                        metrics.inflight_shards.set(len(inflight))
                        fail(
                            index,
                            f"no progress for {detail:.1f}s "
                            f"(timeout {self.timeout:.1f}s)",
                        )
                        progressed = True
                    continue
                inflight.discard(index)
                metrics.inflight_shards.set(len(inflight))
                progressed = True
                if status == "done":
                    transport.collect(plan[index], paths[index])
                    completed.add(index)
                    states[index] = "done"
                    if self.progress is not None:
                        observed_sizes.pop(index, None)
                        observe_running(index)
                    metrics.shards_completed.inc()
                    metrics.shard_latency.observe(
                        time.perf_counter() - started[index]
                    )
                    tracer.instant(
                        "exper.shard_completed", shard=index,
                    )
                else:
                    transport.stop(index)  # reap before relaunch
                    fail(index, str(detail))
            while next_to_yield in completed:
                shard = plan[next_to_yield]
                run_header, records = read_run(paths[next_to_yield])
                check_header_compatible(
                    run_header, header,
                    f"shard {next_to_yield} run {paths[next_to_yield]}",
                )
                for record in records:
                    key = (record.fraction_index, record.trial_index)
                    if key in self.finished:
                        continue
                    if not shard.contains(*key):
                        raise ReproError(
                            f"shard {next_to_yield} run holds a record "
                            f"for grid coordinate {key} outside its "
                            f"slice"
                        )
                    yield record
                next_to_yield += 1
                progressed = True
            if self.progress is not None:
                counted = False
                for index in sorted(inflight):
                    counted = observe_running(index) or counted
                if counted or progressed:
                    publish()
            if not progressed and (inflight or pending):
                time.sleep(self.poll_interval)
