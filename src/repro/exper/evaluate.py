"""Pure trial evaluation: (topology, spec, trial) → TrialRecords.

One trial evaluates *every* grid cell, in order, with a single
tie-break RNG seeded from the trial — a paired design: every cell sees
the same (victim, attackers) cast, the same validator sample, and the
same tie-break luck, so cell-to-cell differences measure the policy,
not the noise.  (It is also exactly what the legacy study loops did,
which is why they reproduce bit-for-bit through this engine.)

All cells — the four historical single-attacker variants and the
scenario space the old loops could not express (multiple simultaneous
attackers, AS-path-prepended announcements) — evaluate through one
shared core, :func:`repro.bgp.attacks.evaluate_attack_seeds`; this
module only builds the attacker seed lists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..bgp.attacks import evaluate_attack_seeds
from ..bgp.simulation import Seed
from ..bgp.topology import AsTopology
from .scenarios import AttackConfig
from .spec import ExperimentSpec, TrialSpec

__all__ = ["TrialRecord", "evaluate_trial"]


@dataclass(frozen=True)
class TrialRecord:
    """The outcome of one (trial, cell) evaluation.

    Attributes:
        fraction_index / trial_index / cell_index: grid coordinates.
        fraction: the validating fraction (``None`` = universal).
        cell: the cell's name.
        victim / attackers: the trial's cast (this cell's slice).
        attacker_fraction / victim_fraction / disconnected_fraction:
            shares of judged ASes routing the attacked space to each
            party (or nowhere).
        attack_route_filtered: True when validation removed every
            attacker announcement everywhere.
    """

    fraction_index: int
    trial_index: int
    cell_index: int
    fraction: Optional[float]
    cell: str
    victim: int
    attackers: tuple[int, ...]
    attacker_fraction: float
    victim_fraction: float
    disconnected_fraction: float
    attack_route_filtered: bool

    @property
    def sort_key(self) -> tuple[int, int, int]:
        return (self.fraction_index, self.trial_index, self.cell_index)


def evaluate_trial(
    topology: AsTopology, spec: ExperimentSpec, trial: TrialSpec
) -> list[TrialRecord]:
    """Evaluate every cell of the spec for one materialized trial."""
    tie_rng = random.Random(trial.tie_seed)
    victim_prefix = spec.victim_prefix
    subprefix = spec.effective_attack_prefix
    fraction = spec.fractions[trial.fraction_index]

    records: list[TrialRecord] = []
    for cell_index, cell in enumerate(spec.cells):
        attack = cell.attack
        attackers = trial.attackers[: attack.attackers]
        attack_prefix = attack.attack_prefix_for(victim_prefix, subprefix)
        vrp_index = cell.policy.vrp_index(
            trial.victim, victim_prefix, attack_prefix, trial.trial_bits
        )
        fractions, filtered = evaluate_attack_seeds(
            topology, trial.victim, victim_prefix, attack_prefix,
            [
                _attacker_seed(attack, attacker, trial.victim)
                for attacker in attackers
            ],
            vrp_index=vrp_index,
            validating_ases=trial.validating_ases,
            rng=tie_rng,
            engine=spec.engine,
        )
        records.append(
            TrialRecord(
                fraction_index=trial.fraction_index,
                trial_index=trial.trial_index,
                cell_index=cell_index,
                fraction=fraction,
                cell=cell.name,
                victim=trial.victim,
                attackers=attackers,
                attacker_fraction=fractions[0],
                victim_fraction=fractions[1],
                disconnected_fraction=fractions[2],
                attack_route_filtered=filtered,
            )
        )
    return records


def _attacker_seed(
    attack: AttackConfig, attacker: int, victim: int
) -> Seed:
    """The (possibly prepended) announcement of one attacker."""
    head = (attacker,) * (1 + attack.prepend)
    if attack.kind.forges_origin:
        return Seed(attacker, head + (victim,))
    return Seed(attacker, head)
