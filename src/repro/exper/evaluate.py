"""Pure trial evaluation: (topology, spec, trial) → TrialRecords.

One trial evaluates *every* grid cell, in order, with a single
tie-break RNG seeded from the trial — a paired design: every cell sees
the same (victim, attackers) cast, the same validator sample, and the
same tie-break luck, so cell-to-cell differences measure the policy,
not the noise.  (It is also exactly what the legacy study loops did,
which is why they reproduce bit-for-bit through this engine.)

All cells — the four historical single-attacker variants and the
scenario space the old loops could not express (multiple simultaneous
attackers, AS-path-prepended announcements) — evaluate through one
shared core, :func:`repro.bgp.attacks.evaluate_attack_seeds`; this
module only builds the attacker seed lists.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional, Union

from ..bgp.attacks import evaluate_attack_seeds
from ..bgp.fastprop import (
    AttackCase,
    PropagationWorkspace,
    evaluate_attack_seeds_array_batch,
)
from ..bgp.simulation import Seed
from ..bgp.topology import AsTopology, CompiledTopology
from ..netbase.errors import ReproError
from .scenarios import AttackConfig
from .spec import ExperimentSpec, TrialSpec

__all__ = [
    "RECORD_SCHEMA",
    "TrialRecord",
    "evaluate_trial",
    "evaluate_trials",
]

#: Version of the TrialRecord wire schema.  Bump it when the field
#: list below changes; readers reject records from other versions
#: rather than guessing at their meaning.
RECORD_SCHEMA = 1

#: The exact wire field list, in serialization order.  ``to_json_dict``
#: emits these plus ``"schema"``; ``from_json_dict`` requires all of
#: them and rejects anything else — silent drift between writer and
#: reader is how archived runs rot.
_RECORD_FIELDS = (
    "fraction_index",
    "trial_index",
    "cell_index",
    "fraction",
    "cell",
    "victim",
    "attackers",
    "attacker_fraction",
    "victim_fraction",
    "disconnected_fraction",
    "attack_route_filtered",
)


@dataclass(frozen=True)
class TrialRecord:
    """The outcome of one (trial, cell) evaluation.

    Attributes:
        fraction_index / trial_index / cell_index: grid coordinates.
        fraction: the validating fraction (``None`` = universal).
        cell: the cell's name.
        victim / attackers: the trial's cast (this cell's slice).
        attacker_fraction / victim_fraction / disconnected_fraction:
            shares of judged ASes routing the attacked space to each
            party (or nowhere).
        attack_route_filtered: True when validation removed every
            attacker announcement everywhere.
    """

    fraction_index: int
    trial_index: int
    cell_index: int
    fraction: Optional[float]
    cell: str
    victim: int
    attackers: tuple[int, ...]
    attacker_fraction: float
    victim_fraction: float
    disconnected_fraction: float
    attack_route_filtered: bool

    @property
    def sort_key(self) -> tuple[int, int, int]:
        return (self.fraction_index, self.trial_index, self.cell_index)

    # ------------------------------------------------------------------
    # Versioned wire schema (the repro.results JSONL line format)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """This record as a schema-versioned, JSON-ready dict."""
        data: dict = {"schema": RECORD_SCHEMA}
        for name in _RECORD_FIELDS:
            value = getattr(self, name)
            if name == "attackers":
                value = list(value)
            data[name] = value
        return data

    @classmethod
    def from_json_dict(cls, data: object) -> "TrialRecord":
        """Decode one wire dict, strictly.

        Unknown fields, missing fields, or a schema version this
        reader does not speak all raise :class:`ReproError` — a record
        that cannot be decoded faithfully must not be decoded at all.
        """
        if not isinstance(data, dict):
            raise ReproError(f"trial record must be an object, not {data!r}")
        schema = data.get("schema")
        if schema != RECORD_SCHEMA:
            raise ReproError(
                f"trial record schema {schema!r} is not the supported "
                f"schema {RECORD_SCHEMA}"
            )
        missing = [n for n in _RECORD_FIELDS if n not in data]
        if missing:
            raise ReproError(f"trial record missing fields {missing}")
        unknown = sorted(set(data) - set(_RECORD_FIELDS) - {"schema"})
        if unknown:
            raise ReproError(f"trial record has unknown fields {unknown}")
        def bad(name: str) -> ReproError:
            return ReproError(
                f"bad trial record value: {name}={data[name]!r}"
            )

        # Exact JSON types, no coercion: int("3"), bool("false"), or a
        # string iterated as an attacker list would all decode to
        # something the writer never meant.
        def as_int(name: str) -> int:
            value = data[name]
            if isinstance(value, bool) or not isinstance(value, int):
                raise bad(name)
            return value

        def as_float(name: str) -> float:
            value = data[name]
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise bad(name)
            return float(value)

        fraction = data["fraction"]
        if not isinstance(data["cell"], str):
            raise bad("cell")
        if fraction is not None and (
            isinstance(fraction, bool)
            or not isinstance(fraction, (int, float))
        ):
            raise bad("fraction")
        attackers = data["attackers"]
        if isinstance(attackers, str) or not isinstance(
            attackers, (list, tuple)
        ):
            raise bad("attackers")
        for attacker in attackers:
            if isinstance(attacker, bool) or not isinstance(
                attacker, int
            ):
                raise bad("attackers")
        if not isinstance(data["attack_route_filtered"], bool):
            raise bad("attack_route_filtered")
        return cls(
            fraction_index=as_int("fraction_index"),
            trial_index=as_int("trial_index"),
            cell_index=as_int("cell_index"),
            fraction=None if fraction is None else float(fraction),
            cell=data["cell"],
            victim=as_int("victim"),
            attackers=tuple(attackers),
            attacker_fraction=as_float("attacker_fraction"),
            victim_fraction=as_float("victim_fraction"),
            disconnected_fraction=as_float("disconnected_fraction"),
            attack_route_filtered=data["attack_route_filtered"],
        )


def evaluate_trial(
    topology: Union[AsTopology, CompiledTopology],
    spec: ExperimentSpec,
    trial: TrialSpec,
    *,
    workspace: Optional[PropagationWorkspace] = None,
) -> list[TrialRecord]:
    """Evaluate every cell of the spec for one materialized trial.

    ``topology`` may be a pre-compiled topology when the spec runs the
    array engine (workers receive only the compiled form).
    ``workspace`` — one per worker — lets the array engine reuse
    propagation state across trials; results are byte-identical with
    or without it (a tested invariant), so it is purely a throughput
    knob.  The object engine ignores it.
    """
    tie_rng = random.Random(trial.tie_seed)
    victim_prefix = spec.victim_prefix
    subprefix = spec.effective_attack_prefix
    fraction = spec.fractions[trial.fraction_index]
    if spec.engine != "array":
        workspace = None

    prepared = []
    for cell in spec.cells:
        attack = cell.attack
        attackers = trial.attackers[: attack.attackers]
        attack_prefix = attack.attack_prefix_for(victim_prefix, subprefix)
        vrp_index = cell.policy.vrp_index(
            trial.victim, victim_prefix, attack_prefix, trial.trial_bits
        )
        seeds = tuple(
            _attacker_seed(attack, attacker, trial.victim)
            for attacker in attackers
        )
        prepared.append((attackers, attack_prefix, vrp_index, seeds))

    if workspace is not None:
        # The array engine's batched entry: one call per trial, one
        # case per cell, tie_rng consumed case by case in cell order —
        # byte-identical to the per-cell path below.
        outcomes = evaluate_attack_seeds_array_batch(
            topology,
            [
                AttackCase(
                    trial.victim, victim_prefix, attack_prefix, seeds,
                    vrp_index=vrp_index,
                    validating_ases=trial.validating_ases,
                )
                for _, attack_prefix, vrp_index, seeds in prepared
            ],
            rng=tie_rng,
            workspace=workspace,
        )
    else:
        outcomes = [
            evaluate_attack_seeds(
                topology, trial.victim, victim_prefix, attack_prefix,
                list(seeds),
                vrp_index=vrp_index,
                validating_ases=trial.validating_ases,
                rng=tie_rng,
                engine=spec.engine,
            )
            for _, attack_prefix, vrp_index, seeds in prepared
        ]

    return [
        TrialRecord(
            fraction_index=trial.fraction_index,
            trial_index=trial.trial_index,
            cell_index=cell_index,
            fraction=fraction,
            cell=cell.name,
            victim=trial.victim,
            attackers=attackers,
            attacker_fraction=fractions[0],
            victim_fraction=fractions[1],
            disconnected_fraction=fractions[2],
            attack_route_filtered=filtered,
        )
        for cell_index, (cell, (attackers, _, _, _), (fractions, filtered))
        in enumerate(zip(spec.cells, prepared, outcomes))
    ]


def evaluate_trials(
    topology: Union[AsTopology, CompiledTopology],
    spec: ExperimentSpec,
    trials: Iterable[TrialSpec],
    *,
    workspace: Optional[PropagationWorkspace] = None,
    observe: Optional[Callable[[TrialSpec, float], None]] = None,
) -> Iterator[TrialRecord]:
    """Evaluate a stream of trials with one shared workspace.

    The batched evaluation path the executors use: the workspace (one
    is created here for the array engine when none is passed) keeps
    its state arrays and profile cache alive across the whole stream,
    which is where the trials/sec win over per-trial allocation comes
    from.  Record content is byte-identical to mapping
    :func:`evaluate_trial` over the same trials.

    ``observe`` — called as ``observe(trial, seconds)`` after each
    trial evaluates — is the runner's per-trial latency hook; it is
    pure observation and must not mutate anything the trial reads.
    When it is ``None`` (telemetry off) no clocks are read at all.
    """
    if workspace is None and spec.engine == "array":
        workspace = PropagationWorkspace(topology)
    if observe is None:
        for trial in trials:
            yield from evaluate_trial(
                topology, spec, trial, workspace=workspace
            )
        return
    clock = time.perf_counter
    for trial in trials:
        start = clock()
        records = evaluate_trial(
            topology, spec, trial, workspace=workspace
        )
        observe(trial, clock() - start)
        yield from records


def _attacker_seed(
    attack: AttackConfig, attacker: int, victim: int
) -> Seed:
    """The (possibly prepended) announcement of one attacker."""
    head = (attacker,) * (1 + attack.prepend)
    if attack.kind.forges_origin:
        return Seed(attacker, head + (victim,))
    return Seed(attacker, head)
