"""The scenario grammar: what one experiment cell *is*.

The paper's §4/§5 claims are statistical statements over a space of
scenarios: an attack variant, launched by some attacker population,
against a victim protected by some ROA policy, on an Internet where
some fraction of ASes validate.  This module names each of those axes
as a small, declarative value type:

* :class:`AttackConfig` — an :class:`~repro.bgp.attacks.AttackKind`
  plus the knobs the four hand-rolled study loops could never turn:
  how many simultaneous attackers, and how much AS-path prepending the
  forged announcement carries.
* :class:`RoaPolicy` — how the victim's prefix is covered:
  :class:`MinimalRoa` (the paper's recommendation), a
  :class:`MaxLengthLooseRoa` (the §4 vulnerability), :class:`NoRoa`,
  a :class:`CustomRoa` (explicit VRPs), or :class:`PartialCoverageRoa`
  (the victim issued a ROA only with some probability — per-AS partial
  RPKI adoption).
* :class:`VictimAttackerSampler` — how (victim, attacker…) tuples are
  drawn: stub pairs (the historical default), any-AS pairs, or a fixed
  pair for deterministic studies.
* :class:`ScenarioCell` — one (attack, policy) grid cell.

Everything here is a frozen dataclass: hashable, comparable, and —
deliberately — picklable, because the multiprocessing executor ships
the whole grammar to each worker exactly once.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..bgp.attacks import AttackKind
from ..bgp.origin_validation import VrpIndex
from ..bgp.topology import AsTopology
from ..netbase import Prefix
from ..netbase.errors import ReproError
from ..rpki.vrp import Vrp

__all__ = [
    "AttackConfig",
    "RoaPolicy",
    "MinimalRoa",
    "MaxLengthLooseRoa",
    "NoRoa",
    "CustomRoa",
    "PartialCoverageRoa",
    "VictimAttackerSampler",
    "StubPairSampler",
    "AnyAsPairSampler",
    "FixedPairSampler",
    "ScenarioCell",
]


# ----------------------------------------------------------------------
# Attacks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttackConfig:
    """One attack variant, generalized beyond the four legacy loops.

    Attributes:
        kind: the :class:`AttackKind`; string names are coerced.
        attackers: number of simultaneous hijackers announcing the
            attack prefix (the legacy loops could only express 1).
        prepend: extra copies of the attacker's own ASN prepended to
            its announcement — a stealthier forged-origin variant that
            trades capture for plausibility.
    """

    kind: AttackKind
    attackers: int = 1
    prepend: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", AttackKind.coerce(self.kind))
        if self.attackers < 1:
            raise ReproError("an attack needs at least one attacker")
        if self.prepend < 0:
            raise ReproError("prepend count cannot be negative")

    @property
    def label(self) -> str:
        parts = [self.kind.value]
        if self.attackers != 1:
            parts.append(f"x{self.attackers}")
        if self.prepend:
            parts.append(f"prepend{self.prepend}")
        return "+".join(parts)

    def attack_prefix_for(
        self, victim_prefix: Prefix, attack_prefix: Prefix
    ) -> Prefix:
        """Subprefix kinds hijack the subprefix, the rest the prefix."""
        return attack_prefix if self.kind.is_subprefix else victim_prefix


# ----------------------------------------------------------------------
# ROA policies
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RoaPolicy:
    """How the victim's address space is covered by the RPKI.

    Subclasses build the :class:`VrpIndex` routers validate against for
    one trial.  ``trial_bits`` is a per-trial random word (drawn by the
    spec's seeding layer) for policies that make per-trial choices;
    policies that need it set :attr:`needs_trial_bits` so deterministic
    seed streams stay minimal when no such policy is present.
    """

    needs_trial_bits = False

    @property
    def label(self) -> str:
        raise NotImplementedError

    def vrp_index(
        self,
        victim: int,
        victim_prefix: Prefix,
        attack_prefix: Prefix,
        trial_bits: int,
    ) -> Optional[VrpIndex]:
        raise NotImplementedError


@dataclass(frozen=True)
class MinimalRoa(RoaPolicy):
    """The paper's §5 recommendation: ``(p, len(p), victim)``."""

    @property
    def label(self) -> str:
        return "minimal"

    def vrp_index(self, victim, victim_prefix, attack_prefix, trial_bits):
        return VrpIndex([Vrp(victim_prefix, victim_prefix.length, victim)])


@dataclass(frozen=True)
class MaxLengthLooseRoa(RoaPolicy):
    """The §4 vulnerability: a maxLength reaching the attack prefix.

    Attributes:
        max_length: the ROA's maxLength; ``None`` means "exactly long
            enough to authorize the attack prefix" (the worst case).
    """

    max_length: Optional[int] = None

    @property
    def label(self) -> str:
        if self.max_length is None:
            return "maxlength-loose"
        return f"maxlength-{self.max_length}"

    def vrp_index(self, victim, victim_prefix, attack_prefix, trial_bits):
        max_length = self.max_length
        if max_length is None:
            max_length = attack_prefix.length
        return VrpIndex([Vrp(victim_prefix, max_length, victim)])


@dataclass(frozen=True)
class NoRoa(RoaPolicy):
    """No RPKI coverage at all — the pre-deployment Internet."""

    @property
    def label(self) -> str:
        return "none"

    def vrp_index(self, victim, victim_prefix, attack_prefix, trial_bits):
        return None


@dataclass(frozen=True)
class CustomRoa(RoaPolicy):
    """An explicit, victim-independent VRP set."""

    vrps: tuple[Vrp, ...]
    name: str = "custom"

    @property
    def label(self) -> str:
        return self.name

    def vrp_index(self, victim, victim_prefix, attack_prefix, trial_bits):
        return VrpIndex(self.vrps)


@dataclass(frozen=True)
class PartialCoverageRoa(RoaPolicy):
    """Per-AS partial ROA adoption: the victim issued ``base`` with
    probability ``coverage``, else nothing.

    The coin flip is a property of the *victim* (did this AS sign up
    for the RPKI?), so it is derived from the trial's random word and
    shared by every partial-coverage cell in the trial.
    """

    base: RoaPolicy
    coverage: float = 0.5

    needs_trial_bits = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.coverage <= 1.0:
            raise ReproError("coverage must be a fraction in [0, 1]")
        if self.base.needs_trial_bits:
            raise ReproError("partial coverage cannot nest")

    @property
    def label(self) -> str:
        return f"{self.base.label}@{self.coverage:g}"

    def vrp_index(self, victim, victim_prefix, attack_prefix, trial_bits):
        if random.Random(trial_bits).random() >= self.coverage:
            return None
        return self.base.vrp_index(
            victim, victim_prefix, attack_prefix, trial_bits
        )


#: CLI/JSON names for the parameter-free policies.
def policy_from_name(name: str) -> RoaPolicy:
    """Parse a policy from its CLI/JSON name.

    Accepts ``minimal``, ``maxlength-loose``, ``maxlength-<N>``,
    ``none``, and ``<base>@<coverage>`` for partial adoption.
    """
    if "@" in name:
        base_name, _, coverage_text = name.rpartition("@")
        try:
            coverage = float(coverage_text)
        except ValueError:
            raise ReproError(f"bad coverage fraction in {name!r}") from None
        return PartialCoverageRoa(policy_from_name(base_name), coverage)
    if name == "minimal":
        return MinimalRoa()
    if name == "maxlength-loose":
        return MaxLengthLooseRoa()
    if name.startswith("maxlength-"):
        try:
            return MaxLengthLooseRoa(int(name.removeprefix("maxlength-")))
        except ValueError:
            raise ReproError(f"bad maxLength in policy {name!r}") from None
    if name == "none":
        return NoRoa()
    raise ReproError(
        f"unknown ROA policy {name!r}; expected minimal, maxlength-loose, "
        f"maxlength-<N>, none, or <base>@<coverage>"
    )


# ----------------------------------------------------------------------
# Samplers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VictimAttackerSampler:
    """Draws the (victim, attackers…) cast of one trial.

    :meth:`population` fixes the candidate pool once per run (sorted,
    so draws are reproducible across processes and Python hash seeds);
    :meth:`sample` then draws ``1 + attackers`` distinct ASes from it.
    """

    def population(self, topology: AsTopology) -> tuple[int, ...]:
        raise NotImplementedError

    def sample(
        self,
        pool: tuple[int, ...],
        rng: random.Random,
        attackers: int,
    ) -> tuple[int, tuple[int, ...]]:
        if len(pool) < 1 + attackers:
            raise ReproError(
                f"population of {len(pool)} cannot cast 1 victim and "
                f"{attackers} attacker(s)"
            )
        drawn = rng.sample(pool, 1 + attackers)
        return drawn[0], tuple(drawn[1:])


@dataclass(frozen=True)
class StubPairSampler(VictimAttackerSampler):
    """Victim and attackers among the stub ASes — the historical
    default: hijacks are typically launched from and against the edge.
    """

    def population(self, topology: AsTopology) -> tuple[int, ...]:
        return tuple(sorted(topology.stub_ases()))


@dataclass(frozen=True)
class AnyAsPairSampler(VictimAttackerSampler):
    """Victim and attackers anywhere in the topology, transit included."""

    def population(self, topology: AsTopology) -> tuple[int, ...]:
        return tuple(sorted(topology.ases))


@dataclass(frozen=True)
class FixedPairSampler(VictimAttackerSampler):
    """A pinned cast — every trial replays the same parties (useful for
    deterministic single-scenario studies and debugging)."""

    victim: int
    attackers: tuple[int, ...]

    def __post_init__(self) -> None:
        cast = (self.victim, *self.attackers)
        if len(set(cast)) != len(cast):
            raise ReproError("victim and attackers must be distinct ASes")

    def population(self, topology: AsTopology) -> tuple[int, ...]:
        for asn in (self.victim, *self.attackers):
            if asn not in topology:
                raise ReproError(f"fixed AS{asn} not in topology")
        return (self.victim, *self.attackers)

    def sample(self, pool, rng, attackers):
        if attackers > len(self.attackers):
            raise ReproError(
                f"fixed cast has {len(self.attackers)} attacker(s), "
                f"cell needs {attackers}"
            )
        return self.victim, self.attackers[:attackers]


# ----------------------------------------------------------------------
# Grid cells
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioCell:
    """One grid cell: an attack evaluated under a ROA policy."""

    attack: AttackConfig
    policy: RoaPolicy
    name: str = field(default="")

    def __post_init__(self) -> None:
        if isinstance(self.attack, (str, AttackKind)):
            object.__setattr__(self, "attack", AttackConfig(self.attack))
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.attack.label}/{self.policy.label}"
            )
