"""The experiment runner: executors that turn specs into results.

The driver materializes every trial (cheap, sequential, all the
randomness), then an executor evaluates them (expensive, pure):

* ``"serial"`` — a plain loop in this process.
* ``"process"`` — a :mod:`multiprocessing` pool.  The topology and
  spec are shipped to each worker exactly once via the pool
  initializer; trials are batched so a task amortizes IPC over many
  propagations, and results stream back as batches complete.

Because trials are pure functions of (topology, spec, trial), the two
executors produce identical record sets and therefore byte-identical
aggregated results — a property the test suite enforces.  Trials/sec
scales with cores under ``"process"``, which is what lets the studies
grow to CAIDA-sized topologies (ROADMAP: "as fast as the hardware
allows").
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterator, Optional

from ..bgp.topology import AsTopology
from ..netbase.errors import ReproError
from .aggregate import ExperimentResult, aggregate_records
from .evaluate import TrialRecord, evaluate_trial
from .spec import ExperimentSpec, TrialSpec, materialize_trials

__all__ = ["ExperimentRunner", "EXECUTORS"]

EXECUTORS = ("serial", "process")

#: Worker-process state, installed once by the pool initializer so the
#: topology and spec are pickled per worker, not per task.
_WORKER: dict = {}


def _init_worker(topology: AsTopology, spec: ExperimentSpec) -> None:
    _WORKER["topology"] = topology
    _WORKER["spec"] = spec


def _run_batch(batch: list[TrialSpec]) -> list[TrialRecord]:
    topology = _WORKER["topology"]
    spec = _WORKER["spec"]
    records: list[TrialRecord] = []
    for trial in batch:
        records.extend(evaluate_trial(topology, spec, trial))
    return records


class ExperimentRunner:
    """Runs one :class:`ExperimentSpec` on one topology.

    Args:
        topology: the AS graph every trial propagates on.
        spec: the experiment grid.
        executor: ``"serial"`` or ``"process"``.
        workers: pool size for ``"process"`` (default: CPU count).
        batch_size: trials per pool task (default: balance ~4 tasks
            per worker so stragglers do not serialize the tail).
    """

    def __init__(
        self,
        topology: AsTopology,
        spec: ExperimentSpec,
        *,
        executor: str = "serial",
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ReproError(
                f"unknown executor {executor!r}; expected {EXECUTORS}"
            )
        if workers is not None and workers < 1:
            raise ReproError("workers must be positive")
        if batch_size is not None and batch_size < 1:
            raise ReproError("batch_size must be positive")
        self.topology = topology
        self.spec = spec
        self.executor = executor
        self.workers = workers or os.cpu_count() or 1
        self.batch_size = batch_size

    # ------------------------------------------------------------------
    # Record streaming
    # ------------------------------------------------------------------

    def iter_records(self) -> Iterator[TrialRecord]:
        """Stream TrialRecords as trials complete (unordered under the
        process executor; the aggregator re-orders)."""
        trials = materialize_trials(self.spec, self.topology)
        if self.executor == "serial":
            for trial in trials:
                yield from evaluate_trial(self.topology, self.spec, trial)
            return
        yield from self._iter_process(trials)

    def _iter_process(
        self, trials: list[TrialSpec]
    ) -> Iterator[TrialRecord]:
        batch_size = self.batch_size or max(
            1, len(trials) // (self.workers * 4)
        )
        batches = [
            trials[start:start + batch_size]
            for start in range(0, len(trials), batch_size)
        ]
        with multiprocessing.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(self.topology, self.spec),
        ) as pool:
            for records in pool.imap_unordered(_run_batch, batches):
                yield from records

    # ------------------------------------------------------------------
    # One-shot aggregation
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        bootstrap_resamples: int = 1000,
        confidence: float = 0.95,
        on_record: Optional[Callable[[TrialRecord], None]] = None,
    ) -> ExperimentResult:
        """Run every trial and aggregate the grid.

        ``on_record`` observes each record as it streams in (progress
        reporting); it must not mutate the record.
        """
        def records() -> Iterator[TrialRecord]:
            for record in self.iter_records():
                if on_record is not None:
                    on_record(record)
                yield record

        return aggregate_records(
            self.spec,
            records(),
            bootstrap_resamples=bootstrap_resamples,
            confidence=confidence,
        )
