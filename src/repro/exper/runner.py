"""The experiment runner: executors that turn specs into results.

The driver materializes trials (cheap, sequential, all the
randomness) and an executor evaluates them (expensive, pure):

* ``"serial"`` — a plain loop in this process, sharing one
  :class:`~repro.bgp.fastprop.PropagationWorkspace` across trials.
* ``"process"`` — a :mod:`multiprocessing` pool.  The topology ships
  to the workers exactly once, as a *compiled* flat blob — through a
  :mod:`multiprocessing.shared_memory` segment that every worker
  attaches zero-copy (falling back to one pickled blob when shared
  memory is unavailable) — so no worker ever pickles or recompiles the
  object topology.  Trials stream lazily into bounded batches (driver
  memory stays flat on million-trial grids) and results stream back as
  batches complete.
* ``"sharded"`` — the grid is partitioned into contiguous shards,
  each evaluated by an independent worker streaming into its own
  durable run file, retried on death, and unioned back in grid order
  (see :mod:`repro.exper.sharded`).  This is the multi-host path: the
  default transport runs workers as local processes, and the serve
  tier's HTTP transport dispatches them to remote hosts.
* ``"auto"`` — :func:`resolve_executor` picks ``"serial"`` or
  ``"process"`` from the parallelism actually available, so one-core
  machines never pay process-pool overhead for nothing.

Because trials are pure functions of (topology, spec, trial), all
executors produce identical record sets and therefore byte-identical
aggregated results — a property the test suite enforces.

**Early stopping.**  With ``spec.stopping == "ci"`` the runner
aggregates incrementally: per fraction it advances a watermark over
*consecutively completed* trials and, at spec-configured checkpoints,
bootstraps each cell's CI over that completed-trial prefix.  Once
every cell of a fraction is narrower than ``spec.stop_ci_width``, the
fraction stops: later trials are neither scheduled nor emitted (ones
already in flight are discarded on arrival).  Decisions depend only on
completed-trial prefixes — never on arrival order — so every executor
stops each fraction at the same trial count with identical records,
and ``stopping == "none"`` reproduces the pre-stopping engine byte for
byte.
"""

from __future__ import annotations

import multiprocessing
import os
import queue
import time
from typing import Callable, Iterator, Optional, Sequence

from ..bgp.fastprop import PropagationWorkspace
from ..bgp.topology import AsTopology, CompiledTopology
from ..netbase.errors import ReproError
from ..obs import trace
from ..obs.metrics import MetricsRegistry, get_registry
from ..results.sinks import (
    ResultSink,
    RunHeader,
    check_header_compatible,
)
from .aggregate import ExperimentResult, aggregate_records, prefix_ci_width
from .evaluate import TrialRecord, evaluate_trials
from .sharded import ShardCoordinator
from .spec import EXECUTORS, ExperimentSpec, TrialSpec, iter_trials

__all__ = ["ExperimentRunner", "EXECUTORS", "resolve_executor"]


def resolve_executor(
    executor: str,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    cpu_count: Optional[int] = None,
) -> str:
    """Resolve ``"auto"`` to a concrete executor; pass others through.

    ``"auto"`` picks ``"process"`` only when it can actually win:
    on a one-core machine (``cpu_count() == 1``), or when the caller
    pins ``workers`` or ``shards`` to one, pool overhead is pure loss
    (the ROADMAP records the 1-core process executor at 0.87× serial),
    so ``"serial"`` is chosen instead.  ``cpu_count`` overrides the
    detected core count (tests pin the selection logic with it).
    """
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; expected {EXECUTORS}"
        )
    if executor != "auto":
        return executor
    cores = cpu_count if cpu_count is not None else os.cpu_count() or 1
    if cores <= 1:
        return "serial"
    if shards is not None and shards <= 1:
        return "serial"
    if workers is not None and workers <= 1:
        return "serial"
    return "process"

#: Cap on the self-chosen trials-per-task batch: large enough to
#: amortize IPC, small enough that the bounded in-flight window holds
#: O(workers) trials — not a fixed share of the grid — so driver
#: memory stays flat and early stopping stops *scheduling* promptly.
_MAX_AUTO_BATCH = 64

#: Worker-process state, installed once by the pool initializer:
#: the attached compiled topology (plus the shared-memory handle
#: keeping its buffers alive), the spec, and lazily a reusable
#: propagation workspace and — for the object engine — the
#: reconstructed object topology.
_WORKER: dict = {}


def _attach_shared_blob(name: str):
    """Attach a shared-memory segment without adopting its lifecycle.

    The driver owns creation and unlinking; a worker only maps the
    segment.  On Python 3.13+ ``track=False`` keeps the attach out of
    the resource tracker entirely; before that, pool workers share the
    driver's tracker, where re-registering the same name is idempotent
    and the driver's unlink unregisters it exactly once — so a plain
    attach is already lifecycle-clean.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        return shared_memory.SharedMemory(name=name)


def _init_worker(payload: tuple, spec: ExperimentSpec) -> None:
    kind, value = payload
    if kind == "shm":
        shm = _attach_shared_blob(value)
        _WORKER["shm"] = shm
        compiled = CompiledTopology.from_blob(shm.buf)
    else:  # "blob"
        compiled = CompiledTopology.from_blob(value)
    _WORKER["compiled"] = compiled
    _WORKER["spec"] = spec
    _WORKER["topology"] = None
    _WORKER["workspace"] = None


def _worker_topology():
    """The evaluation topology: compiled for the array engine, the
    reconstructed object form for the object engine (built once per
    worker, from the blob — the object graph never crosses a pipe)."""
    topology = _WORKER["topology"]
    if topology is None:
        compiled = _WORKER["compiled"]
        if _WORKER["spec"].engine == "array":
            topology = compiled
        else:
            topology = compiled.to_topology()
        _WORKER["topology"] = topology
    return topology


def _run_batch(batch: list[TrialSpec]) -> list[TrialRecord]:
    spec = _WORKER["spec"]
    topology = _worker_topology()
    workspace = _WORKER["workspace"]
    if workspace is None and spec.engine == "array":
        workspace = PropagationWorkspace(_WORKER["compiled"])
        _WORKER["workspace"] = workspace
    return list(
        evaluate_trials(topology, spec, batch, workspace=workspace)
    )


class _RunnerMetrics:
    """The runner's ``exper.*`` instruments, resolved once per run.

    Pure observation: every method only counts and times — nothing
    here reads or advances a trial RNG, so aggregated results are
    byte-identical whether the registry records or is the null
    registry (a pinned invariant).
    """

    __slots__ = (
        "enabled", "runs", "trials_completed", "trials_dispatched",
        "records_released", "records_replayed", "batches_dispatched",
        "batches_retired", "fractions_stopped", "trial_latency",
        "batch_latency", "inflight_batches",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        view = registry.view("exper")
        self.enabled = registry.enabled
        self.runs = view.counter("runs")
        self.trials_dispatched = view.counter("trials_dispatched")
        self.trials_completed = view.counter("trials_completed")
        self.records_released = view.counter("records_released")
        self.records_replayed = view.counter("records_replayed")
        self.batches_dispatched = view.counter("batches_dispatched")
        self.batches_retired = view.counter("batches_retired")
        self.fractions_stopped = view.counter("fractions_stopped")
        self.trial_latency = view.histogram("trial_latency")
        self.batch_latency = view.histogram("batch_latency")
        self.inflight_batches = view.gauge("inflight_batches")

    def observe_trial(self, trial: TrialSpec, seconds: float) -> None:
        """The serial executor's per-trial hook."""
        self.trials_completed.inc()
        self.trial_latency.observe(seconds)


class _StopTracker:
    """Prefix-deterministic early stopping for one run.

    Records arrive in arbitrary order; per fraction the tracker holds
    them until the trial-index watermark (count of consecutively
    completed trials from 0) passes them, then releases them
    downstream.  At checkpoints — ``stop_min_trials``, then every
    ``stop_check_every`` — it bootstraps each cell's CI over the
    completed prefix; when all cells beat ``stop_ci_width`` the
    fraction's stop count is fixed at that watermark and everything at
    or past it is discarded.  Every quantity consulted is a pure
    function of the completed-trial prefix, so all executors make
    identical decisions.
    """

    def __init__(
        self,
        spec: ExperimentSpec,
        on_stop: Optional[Callable[[int, int], None]] = None,
    ) -> None:
        self.spec = spec
        cells = len(spec.cells)
        self._pending: list[dict[int, list[TrialRecord]]] = [
            {} for _ in spec.fractions
        ]
        self._values: list[list[list[float]]] = [
            [[] for _ in range(cells)] for _ in spec.fractions
        ]
        self._watermark = [0] * len(spec.fractions)
        self._stop_at: list[Optional[int]] = [None] * len(spec.fractions)
        # Observation only — the callback sees each (fraction,
        # watermark) stop decision but cannot influence it.
        self._on_stop = on_stop

    def stopped_at(self, fraction_index: int) -> Optional[int]:
        return self._stop_at[fraction_index]

    def wants_index(self, fraction_index: int, trial_index: int) -> bool:
        """Should this grid coordinate still be evaluated?"""
        stop = self._stop_at[fraction_index]
        return stop is None or trial_index < stop

    def wants(self, trial: TrialSpec) -> bool:
        """Should this trial still be evaluated?"""
        return self.wants_index(trial.fraction_index, trial.trial_index)

    def final_counts(self) -> tuple[int, ...]:
        return tuple(
            self.spec.trials if stop is None else stop
            for stop in self._stop_at
        )

    def observe(self, record: TrialRecord) -> list[TrialRecord]:
        """Absorb one record; return records now safe to emit."""
        spec = self.spec
        f = record.fraction_index
        stop = self._stop_at[f]
        if stop is not None and record.trial_index >= stop:
            return []
        pending = self._pending[f]
        pending.setdefault(record.trial_index, []).append(record)
        released: list[TrialRecord] = []
        cells = len(spec.cells)
        values = self._values[f]
        while True:
            watermark = self._watermark[f]
            complete = pending.get(watermark)
            if complete is None or len(complete) != cells:
                break
            del pending[watermark]
            complete.sort(key=lambda r: r.cell_index)
            for released_record in complete:
                values[released_record.cell_index].append(
                    released_record.attacker_fraction
                )
            released.extend(complete)
            self._watermark[f] = watermark = watermark + 1
            if self._should_stop(f, watermark):
                self._stop_at[f] = watermark
                for trial_index in [
                    t for t in pending if t >= watermark
                ]:
                    del pending[trial_index]
                if self._on_stop is not None:
                    self._on_stop(f, watermark)
                break
        return released

    def _should_stop(self, fraction_index: int, watermark: int) -> bool:
        spec = self.spec
        if watermark >= spec.trials:
            return False  # natural completion; nothing to cut short
        if watermark < spec.stop_min_trials:
            return False
        if (watermark - spec.stop_min_trials) % spec.stop_check_every:
            return False
        values = self._values[fraction_index]
        return all(
            prefix_ci_width(
                cell_values, spec.seed, fraction_index, cell_index
            ) <= spec.stop_ci_width
            for cell_index, cell_values in enumerate(values)
        )

    def flush_check(self) -> None:
        """Verify every fraction completed (no trials lost in flight)."""
        for f, pending in enumerate(self._pending):
            expected = self.final_counts()[f]
            if self._watermark[f] < expected or pending:
                raise ReproError(
                    f"fraction index {f} completed "
                    f"{self._watermark[f]} of {expected} trials"
                )


class ExperimentRunner:
    """Runs one :class:`ExperimentSpec` on one topology.

    Args:
        topology: the AS graph every trial propagates on.
        spec: the experiment grid.
        executor: ``"serial"``, ``"process"``, ``"sharded"``, or
            ``"auto"`` (resolved via :func:`resolve_executor`);
            ``None`` (the default) defers to ``spec.executor``.
        workers: pool size for ``"process"`` (default: CPU count).
        batch_size: trials per pool task (default: balance ~4 tasks
            per worker so stragglers do not serialize the tail).
        shards: shard count for ``"sharded"`` (default: ``workers``).
        shard_store: directory (or
            :class:`~repro.results.store.ResultsStore`) holding the
            per-shard run files; default: a temporary directory
            removed when the run ends.  A persistent store is what
            makes shard files resumable across coordinator crashes —
            and mergeable with ``repro-roa results merge``.
        shard_transport: the dispatch transport (default: a
            :class:`~repro.exper.sharded.LocalShardTransport`; pass
            the serve tier's ``HttpShardTransport`` for remote hosts).
        shard_retries: relaunch a dead shard this many times before
            the run fails (each retry resumes the shard's own file).
        shard_retry: a :class:`~repro.faults.RetryPolicy` governing
            shard retry count *and* backoff pacing; overrides
            ``shard_retries`` when given (the default policy retries
            immediately, preserving historical behaviour).
        shard_timeout: seconds without observable shard progress
            before the coordinator kills and reassigns it.
        shard_progress: observation-only callback forwarded to
            :class:`~repro.exper.sharded.ShardCoordinator` as
            ``progress`` — receives per-shard state/record snapshots
            (the serve tier points it at
            :meth:`~repro.results.live.RunRegistry.update_shards`).
        sink: a :class:`~repro.results.sinks.ResultSink` that receives
            the run header and every released record as it streams —
            e.g. a :class:`~repro.results.sinks.JsonlSink` for a
            durable run, or a :class:`~repro.results.sinks.TeeSink`
            adding a live :class:`~repro.results.live.ServePublisher`.
        resume_from: a sink holding an earlier, interrupted recording
            of the *same* spec (commonly the same object as ``sink``).
            Its header is verified against the spec's hash, its
            complete trials are replayed instead of re-evaluated
            (under ``"derived"`` seeding they are skipped outright;
            under ``"stream"`` they are drawn but withheld, keeping
            the RNG stream intact), and partially-recorded trials are
            re-evaluated whole — so an interrupted-then-resumed run
            produces a result byte-identical to an uninterrupted one.
        registry: the :class:`~repro.obs.MetricsRegistry` the run's
            ``exper.*`` instruments record into (default: the process
            registry at run time; pass
            :data:`~repro.obs.NULL_REGISTRY` to switch telemetry off).
            Instrumentation never touches a trial RNG, so results are
            byte-identical whichever registry is installed.

    After a ``"process"`` run, :attr:`last_shared_segment` names the
    shared-memory segment the run used (``None`` if the blob-pickle
    fallback shipped the topology); the segment itself is always
    unlinked by the time :meth:`iter_records` finishes — including on
    worker exceptions.
    """

    def __init__(
        self,
        topology: AsTopology,
        spec: ExperimentSpec,
        *,
        executor: Optional[str] = None,
        workers: Optional[int] = None,
        batch_size: Optional[int] = None,
        shards: Optional[int] = None,
        shard_store=None,
        shard_transport=None,
        shard_retries: int = 2,
        shard_retry=None,
        shard_timeout: float = 120.0,
        shard_progress=None,
        sink: Optional[ResultSink] = None,
        resume_from: Optional[ResultSink] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        requested = spec.executor if executor is None else executor
        if workers is not None and workers < 1:
            raise ReproError("workers must be positive")
        if batch_size is not None and batch_size < 1:
            raise ReproError("batch_size must be positive")
        if shards is not None and shards < 1:
            raise ReproError("shards must be positive")
        self.topology = topology
        self.spec = spec
        self.executor = resolve_executor(
            requested, workers=workers, shards=shards
        )
        self.workers = workers or os.cpu_count() or 1
        self.batch_size = batch_size
        self.shards = shards or self.workers
        self.shard_store = shard_store
        self.shard_transport = shard_transport
        self.shard_retries = shard_retries
        self.shard_retry = shard_retry
        self.shard_timeout = shard_timeout
        self.shard_progress = shard_progress
        self.sink = sink
        self.resume_from = resume_from
        #: Metrics destination; ``None`` resolves the process-default
        #: registry at run time (so ``use_registry`` blocks around
        #: ``run()`` behave as expected).
        self.registry = registry
        self.last_shared_segment: Optional[str] = None
        self._header: Optional[RunHeader] = None

    # ------------------------------------------------------------------
    # Record streaming
    # ------------------------------------------------------------------

    def _metrics(self) -> _RunnerMetrics:
        return _RunnerMetrics(
            self.registry if self.registry is not None else get_registry()
        )

    def _make_tracker(
        self, metrics: Optional[_RunnerMetrics] = None
    ) -> Optional["_StopTracker"]:
        if self.spec.stopping != "ci":
            return None
        on_stop = None
        if metrics is not None:

            def on_stop(fraction_index: int, watermark: int) -> None:
                metrics.fractions_stopped.inc()
                trace.get_tracer().instant(
                    "exper.fraction_stopped",
                    fraction_index=fraction_index,
                    trials=watermark,
                )

        return _StopTracker(self.spec, on_stop)

    def iter_records(self) -> Iterator[TrialRecord]:
        """Stream TrialRecords as trials complete (unordered under the
        process executor; the aggregator re-orders).

        Under ``spec.stopping == "ci"`` the stream carries exactly the
        records of trials before each fraction's stop point.  With
        ``resume_from`` set, replayed records stream first; with
        ``sink`` set, every streamed record is persisted as it passes.
        """
        metrics = self._metrics()
        return self._records(self._make_tracker(metrics), metrics)

    def _load_resume(
        self,
    ) -> tuple[list[TrialRecord], frozenset[tuple[int, int]]]:
        """The resume sink's replayable records and finished trials.

        Only *complete* trials — every cell's record present — are
        replayed and skipped; a trial the interrupted run recorded
        partially is re-evaluated whole (its re-written records are
        byte-identical, so durable files tolerate the duplication).
        """
        if self.resume_from is None:
            return [], frozenset()
        header, records = self.resume_from.resume_scan(self.spec)
        if header is None:
            return [], frozenset()
        # The spec hash matched (resume_scan checked); the records must
        # also come from *this* topology — trial outcomes are functions
        # of (topology, spec, trial), so replaying another graph's
        # records would silently mix incomparable worlds.
        check_header_compatible(
            header, self._run_header(), "resume source"
        )
        spec = self.spec
        by_trial: dict[tuple[int, int], list[TrialRecord]] = {}
        for record in records:
            if not (
                0 <= record.fraction_index < len(spec.fractions)
                and 0 <= record.trial_index < spec.trials
                and 0 <= record.cell_index < len(spec.cells)
            ):
                raise ReproError(
                    f"resume record for cell {record.cell!r} addresses "
                    f"grid coordinate ({record.fraction_index}, "
                    f"{record.trial_index}, {record.cell_index}) "
                    f"outside the spec"
                )
            by_trial.setdefault(
                (record.fraction_index, record.trial_index), []
            ).append(record)
        finished = frozenset(
            key
            for key, cell_records in by_trial.items()
            if len(cell_records) == len(spec.cells)
        )
        replay = [
            record
            for key in sorted(finished)
            for record in sorted(
                by_trial[key], key=lambda r: r.cell_index
            )
        ]
        return replay, finished

    def _run_header(self) -> RunHeader:
        """This run's identity: spec hash plus topology digest."""
        if self._header is None:
            self._header = RunHeader.for_spec(self.spec, self.topology)
        return self._header

    def _records(
        self,
        tracker: Optional["_StopTracker"],
        metrics: Optional[_RunnerMetrics] = None,
    ) -> Iterator[TrialRecord]:
        """One run's record stream; all per-run state (stop tracker,
        shared-memory handle) lives in this generator, so overlapping
        or abandoned iterations cannot interfere with each other."""
        if metrics is None:
            metrics = self._metrics()
        metrics.runs.inc()
        with trace.span("exper.resume_scan"):
            replay, finished = self._load_resume()
        if replay:
            metrics.records_replayed.inc(len(replay))
        sink = self.sink
        if sink is not None:
            sink.begin(self._run_header())
        # Replayed records already live in the resume sink; re-write
        # them only when the destination is a different sink.
        rewrite_replay = sink is not None and sink is not self.resume_from

        def wants(fraction_index: int, trial_index: int) -> bool:
            if (fraction_index, trial_index) in finished:
                return False
            return tracker is None or tracker.wants_index(
                fraction_index, trial_index
            )

        if self.executor == "sharded":
            # Shard workers materialize their own trials; the
            # coordinator streams their records back in grid order
            # (``finished`` coordinates excluded — they replay above).
            raw = self._iter_sharded(finished)
        else:
            trials = iter_trials(
                self.spec,
                self.topology,
                wants=(
                    wants if (finished or tracker is not None) else None
                ),
            )
            if self.executor == "serial":
                raw = self._iter_serial(trials, tracker, metrics)
            else:
                raw = self._iter_process(trials, tracker, metrics)

        records_released = metrics.records_released

        def emit(record: TrialRecord) -> TrialRecord:
            records_released.inc()
            if sink is not None and (
                rewrite_replay
                or (record.fraction_index, record.trial_index)
                not in finished
            ):
                sink.write(record)
            return record

        if tracker is None:
            for record in replay:
                yield emit(record)
            for record in raw:
                yield emit(record)
        else:
            # Replay first: tracker decisions are pure functions of
            # completed prefixes, so re-observing the recorded records
            # reproduces the interrupted run's stopping state exactly.
            for record in replay:
                for released in tracker.observe(record):
                    yield emit(released)
            for record in raw:
                for released in tracker.observe(record):
                    yield emit(released)
            tracker.flush_check()
        if sink is not None:
            sink.finish(
                tracker.final_counts()
                if tracker is not None
                else (self.spec.trials,) * len(self.spec.fractions)
            )

    def _iter_serial(
        self,
        trials: Iterator[TrialSpec],
        tracker: Optional[_StopTracker],
        metrics: _RunnerMetrics,
    ) -> Iterator[TrialRecord]:
        # The trial generator already declines stopped trials via its
        # ``wants`` hook; the extra filter catches trials yielded just
        # before a stopping decision landed.
        wanted = (
            trial for trial in trials
            if tracker is None or tracker.wants(trial)
        )
        yield from evaluate_trials(
            self.topology, self.spec, wanted,
            # With the null registry the hook is omitted entirely, so
            # the telemetry-off path skips even the clock reads.
            observe=metrics.observe_trial if metrics.enabled else None,
        )

    def _iter_process(
        self,
        trials: Iterator[TrialSpec],
        tracker: Optional[_StopTracker],
        metrics: _RunnerMetrics,
    ) -> Iterator[TrialRecord]:
        batch_size = self.batch_size or max(
            1,
            min(
                self.spec.total_trials // (self.workers * 4),
                _MAX_AUTO_BATCH,
            ),
        )
        with trace.span("exper.share_topology"):
            payload, shm = self._share_topology()
        try:
            with multiprocessing.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(payload, self.spec),
            ) as pool:
                yield from self._pump_pool(
                    pool, trials, batch_size, tracker, metrics
                )
        finally:
            if shm is not None:
                shm.close()
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass

    def _pump_pool(
        self,
        pool,
        trials: Iterator[TrialSpec],
        batch_size: int,
        tracker: Optional[_StopTracker],
        metrics: _RunnerMetrics,
    ) -> Iterator[TrialRecord]:
        """Windowed task submission: at most ``2 × workers`` batches in
        flight, so lazy trial materialization actually bounds memory
        and early stopping stops *scheduling*, not just emitting.

        Each in-flight batch is timed from dispatch to retirement
        (queue wait plus evaluation — what the driver actually waits
        for); per-propagation detail inside a worker process stays in
        that worker's own registry.
        """
        results: queue.SimpleQueue = queue.SimpleQueue()
        inflight = 0
        tracer = trace.get_tracer()
        clock = time.perf_counter

        def next_batch() -> Optional[list[TrialSpec]]:
            batch: list[TrialSpec] = []
            for trial in trials:
                if tracker is not None and not tracker.wants(trial):
                    continue
                batch.append(trial)
                if len(batch) >= batch_size:
                    break
            return batch or None

        def submit() -> None:
            nonlocal inflight
            while inflight < self.workers * 2:
                batch = next_batch()
                if batch is None:
                    return
                size = len(batch)
                start = clock()
                pool.apply_async(
                    _run_batch,
                    (batch,),
                    callback=lambda r, s=start, n=size: results.put(
                        (True, r, s, n)
                    ),
                    error_callback=lambda e, s=start, n=size: results.put(
                        (False, e, s, n)
                    ),
                )
                inflight += 1
                metrics.batches_dispatched.inc()
                metrics.trials_dispatched.inc(size)
                metrics.inflight_batches.set(inflight)

        submit()
        while inflight:
            ok, value, started, size = results.get()
            inflight -= 1
            metrics.inflight_batches.set(inflight)
            if not ok:
                raise value
            elapsed = clock() - started
            metrics.batches_retired.inc()
            metrics.trials_completed.inc(size)
            metrics.batch_latency.observe(elapsed)
            tracer.complete(
                "exper.batch", started, elapsed, trials=size
            )
            yield from value
            submit()

    def _iter_sharded(
        self, finished: frozenset
    ) -> Iterator[TrialRecord]:
        """Raw record stream of the sharded executor.

        The coordinator yields in grid order with ``finished``
        coordinates excluded, so downstream (tracker, sink, emit)
        treats this exactly like the serial stream.  Early stopping is
        honoured at the coordinator: workers evaluate their whole
        slice, and the tracker discards post-stop records on arrival —
        identical counts and records to serial, at the cost of some
        wasted shard work.
        """
        coordinator = ShardCoordinator(
            self.topology,
            self.spec,
            shards=self.shards,
            store=self.shard_store,
            transport=self.shard_transport,
            parallel=self.workers,
            retries=self.shard_retries,
            retry=self.shard_retry,
            timeout=self.shard_timeout,
            finished=finished,
            registry=self.registry,
            progress=self.shard_progress,
        )
        try:
            yield from coordinator.records()
        finally:
            self.last_shared_segment = coordinator.last_shared_segment

    # ------------------------------------------------------------------
    # Shared-memory topology shipping
    # ------------------------------------------------------------------

    def _share_topology(self) -> tuple:
        """Compile once, publish the blob, return (payload, handle).

        Preferred transport: a shared-memory segment all workers attach
        zero-copy — the caller owns the returned handle and unlinks it
        when its run ends.  Fallback (no ``/dev/shm``, permissions):
        the blob rides the initializer's pickle — still one flat
        buffer, still no per-worker recompile.
        ``last_shared_segment`` records the most recent run's segment
        name (observability only).
        """
        blob = self.topology.compiled().to_blob()
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=len(blob))
        except (ImportError, OSError):
            self.last_shared_segment = None
            return ("blob", blob), None
        try:
            shm.buf[: len(blob)] = blob
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        self.last_shared_segment = shm.name
        return ("shm", shm.name), shm

    # ------------------------------------------------------------------
    # One-shot aggregation
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        bootstrap_resamples: int = 1000,
        confidence: float = 0.95,
        on_record: Optional[Callable[[TrialRecord], None]] = None,
    ) -> ExperimentResult:
        """Run every trial and aggregate the grid.

        ``on_record`` observes each record as it streams in (progress
        reporting); it must not mutate the record.
        """
        metrics = self._metrics()
        tracker = self._make_tracker(metrics)

        def records() -> Iterator[TrialRecord]:
            for record in self._records(tracker, metrics):
                if on_record is not None:
                    on_record(record)
                yield record

        def expected() -> Sequence[int]:
            if tracker is not None:
                return tracker.final_counts()
            return (self.spec.trials,) * len(self.spec.fractions)

        with trace.span(
            "exper.run",
            executor=self.executor,
            cells=len(self.spec.cells),
            trials=self.spec.total_trials,
        ):
            return aggregate_records(
                self.spec,
                records(),
                bootstrap_resamples=bootstrap_resamples,
                confidence=confidence,
                expected_trials=expected,
            )
