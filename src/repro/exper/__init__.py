"""repro.exper — the unified, parallel experiment engine.

Every statistical claim of the paper — average attacker capture over
sampled (victim, attacker) pairs, under varying ROA policies and
validation deployment — is one :class:`ExperimentSpec` away:

    >>> from repro.exper import (
    ...     AttackConfig, ExperimentRunner, ExperimentSpec,
    ...     MaxLengthLooseRoa, MinimalRoa, ScenarioCell,
    ... )
    >>> spec = ExperimentSpec(
    ...     cells=(
    ...         ScenarioCell("forged-origin-subprefix", MaxLengthLooseRoa()),
    ...         ScenarioCell("forged-origin-subprefix", MinimalRoa()),
    ...     ),
    ...     trials=50,
    ...     fractions=(0.0, 0.5, 1.0),
    ... )
    >>> result = ExperimentRunner(
    ...     topology, spec, executor="process"
    ... ).run()                                          # doctest: +SKIP
    >>> result.cell("forged-origin-subprefix/minimal", 1.0).mean
    0.0                                                 # doctest: +SKIP

The layers, bottom to top:

* :mod:`repro.exper.scenarios` — the scenario grammar (attack
  configs, ROA policies, victim/attacker samplers, grid cells).
* :mod:`repro.exper.spec` — :class:`ExperimentSpec`, deterministic
  per-trial seed derivation, JSON round trip, trial materialization.
* :mod:`repro.exper.evaluate` — pure (topology, spec, trial) →
  :class:`TrialRecord` evaluation, including multi-attacker and
  path-prepended generalizations.
* :mod:`repro.exper.runner` — serial and multiprocessing executors,
  plus durable-record sinks and resumption (see :mod:`repro.results`).
* :mod:`repro.exper.sharded` — the sharded executor: grid
  partitioning, crash-retried shard workers streaming durable
  partials, and the coordinator that unions them byte-identically to
  a serial run.
* :mod:`repro.exper.aggregate` — means, stdevs, and bootstrap
  confidence intervals per grid cell, streamed through
  :mod:`repro.results.accumulate`.
"""

from .aggregate import (
    CellStats,
    ExperimentResult,
    aggregate_records,
    prefix_ci_width,
)
from .evaluate import (
    RECORD_SCHEMA,
    TrialRecord,
    evaluate_trial,
    evaluate_trials,
)
from .runner import EXECUTORS, ExperimentRunner, resolve_executor
from .scenarios import (
    AnyAsPairSampler,
    AttackConfig,
    CustomRoa,
    FixedPairSampler,
    MaxLengthLooseRoa,
    MinimalRoa,
    NoRoa,
    PartialCoverageRoa,
    RoaPolicy,
    ScenarioCell,
    StubPairSampler,
    VictimAttackerSampler,
    policy_from_name,
)
from .sharded import (
    LocalShardTransport,
    Shard,
    ShardCoordinator,
    plan_shards,
    run_shard,
)
from .spec import (
    ExperimentSpec,
    TrialSpec,
    derive_trial_seed,
    iter_trials,
    materialize_trials,
)

__all__ = [
    "AnyAsPairSampler",
    "AttackConfig",
    "CellStats",
    "CustomRoa",
    "EXECUTORS",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "FixedPairSampler",
    "LocalShardTransport",
    "MaxLengthLooseRoa",
    "MinimalRoa",
    "NoRoa",
    "PartialCoverageRoa",
    "RECORD_SCHEMA",
    "RoaPolicy",
    "ScenarioCell",
    "Shard",
    "ShardCoordinator",
    "StubPairSampler",
    "TrialRecord",
    "TrialSpec",
    "VictimAttackerSampler",
    "aggregate_records",
    "derive_trial_seed",
    "evaluate_trial",
    "evaluate_trials",
    "iter_trials",
    "materialize_trials",
    "plan_shards",
    "policy_from_name",
    "prefix_ci_width",
    "resolve_executor",
    "run_shard",
]
