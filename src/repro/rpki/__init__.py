"""The RPKI substrate: objects, hierarchy, publication, validation.

Builds the full object chain of the real RPKI in simplified profiles:
resource certificates (RFC 6487/3779), ROAs (RFC 6482), manifests
(RFC 6486), CRLs, publication points, CAs, and the relying-party
validator that turns it all into Validated ROA Payloads (VRPs).
"""

from .ca import DEFAULT_VALIDITY_SECONDS, CertificateAuthority
from .cert import INHERIT, AsRange, ResourceCertificate
from .manifest import Crl, Manifest, sha256_hex
from .repository import ObjectKind, PublicationPoint, PublishedObject, Repository
from .roa import Roa, RoaPrefix
from .scan import scan_roa_payloads, scan_roas
from .signed_object import SignedObject
from .validator import RelyingParty, ValidationIssue, ValidationRun
from .vrp import Vrp, parse_vrp, sort_vrps

__all__ = [
    "AsRange",
    "CertificateAuthority",
    "Crl",
    "DEFAULT_VALIDITY_SECONDS",
    "INHERIT",
    "Manifest",
    "ObjectKind",
    "PublicationPoint",
    "PublishedObject",
    "RelyingParty",
    "Repository",
    "ResourceCertificate",
    "Roa",
    "RoaPrefix",
    "SignedObject",
    "ValidationIssue",
    "ValidationRun",
    "Vrp",
    "parse_vrp",
    "scan_roa_payloads",
    "scan_roas",
    "sha256_hex",
    "sort_vrps",
]
