"""Certificate authorities: trust anchors, RIRs, and member organizations.

This module wires the object types together into an operating hierarchy:
a :class:`CertificateAuthority` holds a key and a certificate, can issue
child CA certificates (delegating a subset of its resources), can issue
signed ROAs through one-time EE certificates, and publishes everything —
plus a manifest and CRL — at its publication point.

Typical use (see ``examples/quickstart.py``)::

    ta = CertificateAuthority.create_trust_anchor(
        "TA", repository, ip_resources=(Prefix.parse("0.0.0.0/0"),))
    arin = ta.issue_child("ARIN", ip_resources=(Prefix.parse("168.0.0.0/6"),),
                          as_resources=(AsRange(0, 4294967295),))
    bu = arin.issue_child("BU", ip_resources=(Prefix.parse("168.122.0.0/16"),))
    bu.issue_roa(Roa(111, [RoaPrefix(Prefix.parse("168.122.0.0/16"))]))
    bu.publish_crl_and_manifest()
"""

from __future__ import annotations

import random
from typing import Optional

from ..crypto import RsaPrivateKey, generate_keypair
from ..netbase import Prefix
from ..netbase.errors import ValidationError
from .cert import INHERIT, AsRange, ResourceCertificate
from .manifest import Crl, Manifest, sha256_hex
from .oids import OID_ROA_ECONTENT
from .repository import ObjectKind, Repository
from .roa import Roa
from .signed_object import SignedObject

__all__ = ["CertificateAuthority", "DEFAULT_VALIDITY_SECONDS"]

#: Default certificate lifetime: one year.
DEFAULT_VALIDITY_SECONDS = 365 * 24 * 3600


class CertificateAuthority:
    """An RPKI CA: key, certificate, children, and publication point.

    Instances are created through :meth:`create_trust_anchor` and
    :meth:`issue_child`, never directly, so the issuing invariants
    (resource containment, serial uniqueness) always hold.

    By default all ROAs issued by one CA share a single EE keypair;
    generating a fresh 1024-bit key per ROA is cryptographically tidier
    but O(seconds) each, which matters when synthesizing thousands of
    ROAs.  Pass ``fresh_ee_keys=True`` for per-ROA keys.
    """

    def __init__(
        self,
        name: str,
        key: RsaPrivateKey,
        certificate: ResourceCertificate,
        repository: Repository,
        rng: random.Random,
        parent: Optional["CertificateAuthority"] = None,
        now: int = 0,
        fresh_ee_keys: bool = False,
    ) -> None:
        self.name = name
        self.key = key
        self.certificate = certificate
        self.repository = repository
        self.parent = parent
        self.children: list[CertificateAuthority] = []
        self.now = now
        self.fresh_ee_keys = fresh_ee_keys
        self._rng = rng
        self._next_serial = 1
        self._revoked: list[int] = []
        self._manifest_number = 0
        self._ee_key: Optional[RsaPrivateKey] = None
        self._roa_counter = 0
        self.publication_point = repository.point_for(name)
        self.publication_point.publish(
            f"{name}.cer", ObjectKind.CERTIFICATE, certificate.to_der()
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create_trust_anchor(
        cls,
        name: str,
        repository: Repository,
        *,
        ip_resources: tuple[Prefix, ...],
        as_resources: tuple[AsRange, ...] = (AsRange(0, 2**32 - 1),),
        rng: Optional[random.Random] = None,
        now: int = 0,
        validity: int = DEFAULT_VALIDITY_SECONDS,
        key_bits: int = 1024,
        fresh_ee_keys: bool = False,
    ) -> "CertificateAuthority":
        """Create a self-signed root CA (e.g. an RIR trust anchor)."""
        rng = rng if rng is not None else random.Random()
        key = generate_keypair(key_bits, rng)
        certificate = ResourceCertificate.build_and_sign(
            serial=1,
            issuer=name,
            subject=name,
            public_key=key.public,
            not_before=now,
            not_after=now + validity,
            is_ca=True,
            ip_resources=ip_resources,
            as_resources=as_resources,
            issuer_key=key,
        )
        return cls(
            name, key, certificate, repository, rng,
            parent=None, now=now, fresh_ee_keys=fresh_ee_keys,
        )

    def issue_child(
        self,
        name: str,
        *,
        ip_resources: tuple[Prefix, ...] | str = INHERIT,
        as_resources: tuple[AsRange, ...] | str = INHERIT,
        validity: int = DEFAULT_VALIDITY_SECONDS,
        key_bits: int = 1024,
    ) -> "CertificateAuthority":
        """Issue a child CA certificate delegating a resource subset.

        Raises:
            ValidationError: if the requested resources exceed ours.
        """
        key = generate_keypair(key_bits, self._rng)
        certificate = ResourceCertificate.build_and_sign(
            serial=self._allocate_serial(),
            issuer=self.name,
            subject=name,
            public_key=key.public,
            not_before=self.now,
            not_after=self.now + validity,
            is_ca=True,
            ip_resources=ip_resources,
            as_resources=as_resources,
            issuer_key=self.key,
        )
        if not certificate.resources_within(self.certificate):
            raise ValidationError(
                f"cannot delegate resources beyond {self.name}'s own to {name}"
            )
        child = CertificateAuthority(
            name, key, certificate, self.repository, self._rng,
            parent=self, now=self.now, fresh_ee_keys=self.fresh_ee_keys,
        )
        self.children.append(child)
        # The child's CA cert is published at the *issuer's* point, as in
        # the real RPKI.
        self.publication_point.publish(
            f"{name}.cer", ObjectKind.CERTIFICATE, certificate.to_der()
        )
        return child

    def _allocate_serial(self) -> int:
        serial = self._next_serial
        self._next_serial += 1
        return serial

    def _ee_signing_key(self) -> RsaPrivateKey:
        if self.fresh_ee_keys:
            return generate_keypair(1024, self._rng)
        if self._ee_key is None:
            self._ee_key = generate_keypair(1024, self._rng)
        return self._ee_key

    # ------------------------------------------------------------------
    # ROA issuance
    # ------------------------------------------------------------------

    def issue_roa(
        self,
        roa: Roa,
        *,
        validity: int = DEFAULT_VALIDITY_SECONDS,
        name: Optional[str] = None,
    ) -> SignedObject:
        """Sign and publish a ROA under a one-time EE certificate.

        The EE certificate carries exactly the ROA's prefixes as its IP
        resources (RFC 6482 §4: the ROA is valid only if its prefixes
        are covered by the EE cert), which in turn must nest inside this
        CA's resources.

        Raises:
            ValidationError: if the ROA's prefixes exceed our resources.
        """
        ee_key = self._ee_signing_key()
        roa_prefixes = tuple(sorted(entry.prefix for entry in roa.prefixes))
        ee_cert = ResourceCertificate.build_and_sign(
            serial=self._allocate_serial(),
            issuer=self.name,
            subject=f"{self.name}-roa-ee-{self._roa_counter}",
            public_key=ee_key.public,
            not_before=self.now,
            not_after=self.now + validity,
            is_ca=False,
            ip_resources=roa_prefixes,
            as_resources=(),
            issuer_key=self.key,
        )
        if not ee_cert.resources_within(self.certificate):
            raise ValidationError(
                f"ROA for AS{roa.asn} claims prefixes outside {self.name}'s resources"
            )
        econtent = roa.to_econtent()
        signed = SignedObject(
            econtent_type=OID_ROA_ECONTENT,
            econtent=econtent,
            ee_cert=ee_cert,
            signature=ee_key.sign(econtent),
        )
        object_name = name if name is not None else f"roa-{self._roa_counter}.roa"
        self._roa_counter += 1
        self.publication_point.publish(object_name, ObjectKind.ROA, signed.to_der())
        return signed

    def revoke(self, serial: int) -> None:
        """Mark a serial revoked; takes effect at the next CRL issue."""
        if serial not in self._revoked:
            self._revoked.append(serial)

    # ------------------------------------------------------------------
    # Manifest / CRL publication
    # ------------------------------------------------------------------

    def publish_crl_and_manifest(
        self, validity: int = DEFAULT_VALIDITY_SECONDS
    ) -> tuple[Crl, Manifest]:
        """(Re)issue this CA's CRL and manifest over its current objects."""
        crl = Crl(
            issuer=self.name,
            crl_number=self._manifest_number,
            this_update=self.now,
            next_update=self.now + validity,
            revoked_serials=tuple(sorted(self._revoked)),
        ).sign_with(self.key)
        self.publication_point.publish(
            f"{self.name}.crl", ObjectKind.CRL, crl.to_der()
        )

        entries = [
            (obj.name, sha256_hex(obj.data))
            for obj in self.publication_point.objects()
            if obj.kind != ObjectKind.MANIFEST
        ]
        manifest = Manifest(
            issuer=self.name,
            manifest_number=self._manifest_number,
            this_update=self.now,
            next_update=self.now + validity,
            entries=tuple(entries),
        ).sign_with(self.key)
        self.publication_point.publish(
            f"{self.name}.mft", ObjectKind.MANIFEST, manifest.to_der()
        )
        self._manifest_number += 1
        return crl, manifest

    def publish_tree(self) -> None:
        """Publish CRL+manifest for this CA and every descendant."""
        self.publish_crl_and_manifest()
        for child in self.children:
            child.publish_tree()

    def __repr__(self) -> str:
        return f"<CA {self.name} ({len(self.children)} children)>"
