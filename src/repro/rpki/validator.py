"""The relying party: validates a repository into a VRP set.

This is the "local cache" of Figure 1 in the paper.  Starting from one
or more trust anchors it walks the CA hierarchy, checking at every step:

* certificate signatures chain to the trust anchor;
* validity windows contain the evaluation time;
* serials are not revoked by the issuer's current CRL;
* manifests are signed, current, and hash-consistent with the
  publication point (substituted or missing files are flagged);
* RFC 3779 resource containment: a child's resources nest inside its
  issuer's (with ``inherit`` resolved along the chain);
* ROA end-entity certificates cover the ROA's prefixes (RFC 6482 §4).

Objects that fail any check are recorded as :class:`ValidationIssue` and
(in the default lenient mode) skipped; strict mode raises on first
failure.  The output is the set of Validated ROA Payloads the cache
would push to routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..netbase import Prefix
from ..netbase.errors import ReproError, ValidationError
from .cert import INHERIT, AsRange, ResourceCertificate
from .manifest import Crl, Manifest, sha256_hex
from .oids import OID_ROA_ECONTENT
from .repository import ObjectKind, Repository
from .roa import Roa
from .signed_object import SignedObject
from .vrp import Vrp

__all__ = ["ValidationIssue", "ValidationRun", "RelyingParty"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating a publication point."""

    authority: str
    object_name: str
    reason: str

    def __str__(self) -> str:
        return f"[{self.authority}] {self.object_name}: {self.reason}"


@dataclass
class ValidationRun:
    """The outcome of one relying-party pass.

    Attributes:
        vrps: all validated ROA payloads, sorted.
        roas: the decoded ROA payloads behind those VRPs.
        issues: every problem encountered (lenient mode collects them).
        cas_seen / roas_seen: traversal counters for reporting.
    """

    vrps: list[Vrp] = field(default_factory=list)
    roas: list[Roa] = field(default_factory=list)
    issues: list[ValidationIssue] = field(default_factory=list)
    cas_seen: int = 0
    roas_seen: int = 0

    @property
    def ok(self) -> bool:
        return not self.issues


@dataclass(frozen=True)
class _ResourceContext:
    """Effective (inherit-resolved) resources at a point in the chain."""

    ip_resources: tuple[Prefix, ...]
    as_resources: tuple[AsRange, ...]

    def resolve(self, cert: ResourceCertificate) -> "_ResourceContext":
        ip = (
            self.ip_resources
            if cert.ip_resources == INHERIT
            else cert.ip_resources
        )
        as_ = (
            self.as_resources
            if cert.as_resources == INHERIT
            else cert.as_resources
        )
        return _ResourceContext(ip, as_)  # type: ignore[arg-type]

    def covers_prefixes(self, prefixes: tuple[Prefix, ...]) -> bool:
        return all(
            any(block.covers(p) for block in self.ip_resources) for p in prefixes
        )


class RelyingParty:
    """Validates a :class:`Repository` from a set of trust anchors."""

    def __init__(
        self,
        repository: Repository,
        trust_anchors: list[ResourceCertificate],
        *,
        now: int = 0,
        strict: bool = False,
    ) -> None:
        self.repository = repository
        self.trust_anchors = trust_anchors
        self.now = now
        self.strict = strict

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def validate(self) -> ValidationRun:
        """Walk every trust anchor; returns the merged validation run."""
        run = ValidationRun()
        for anchor in self.trust_anchors:
            if not anchor.verify_signature(anchor.public_key):
                self._issue(run, anchor.subject, f"{anchor.subject}.cer",
                            "trust anchor is not properly self-signed")
                continue
            if not anchor.valid_at(self.now):
                self._issue(run, anchor.subject, f"{anchor.subject}.cer",
                            "trust anchor certificate expired or not yet valid")
                continue
            if anchor.ip_resources == INHERIT or anchor.as_resources == INHERIT:
                self._issue(run, anchor.subject, f"{anchor.subject}.cer",
                            "trust anchor cannot inherit resources")
                continue
            context = _ResourceContext(
                anchor.ip_resources, anchor.as_resources  # type: ignore[arg-type]
            )
            self._validate_ca(run, anchor, context, visited=set())
        run.vrps.sort()
        return run

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _issue(self, run: ValidationRun, authority: str, name: str,
               reason: str) -> None:
        issue = ValidationIssue(authority, name, reason)
        if self.strict:
            raise ValidationError(str(issue))
        run.issues.append(issue)

    def _load_manifest_and_crl(
        self, run: ValidationRun, ca_cert: ResourceCertificate
    ) -> tuple[Optional[Manifest], Optional[Crl]]:
        name = ca_cert.subject
        point = self.repository.point_for(name)

        manifest: Optional[Manifest] = None
        manifest_obj = point.get(f"{name}.mft")
        if manifest_obj is None:
            self._issue(run, name, f"{name}.mft", "manifest missing")
        else:
            try:
                manifest = Manifest.from_der(manifest_obj.data)
            except ReproError as exc:
                self._issue(run, name, f"{name}.mft", f"undecodable: {exc}")
            if manifest is not None:
                if not manifest.verify_signature(ca_cert.public_key):
                    self._issue(run, name, f"{name}.mft", "bad manifest signature")
                    manifest = None
                elif not manifest.valid_at(self.now):
                    self._issue(run, name, f"{name}.mft", "manifest stale")
                    manifest = None

        crl: Optional[Crl] = None
        crl_obj = point.get(f"{name}.crl")
        if crl_obj is None:
            self._issue(run, name, f"{name}.crl", "CRL missing")
        else:
            try:
                crl = Crl.from_der(crl_obj.data)
            except ReproError as exc:
                self._issue(run, name, f"{name}.crl", f"undecodable: {exc}")
            if crl is not None:
                if not crl.verify_signature(ca_cert.public_key):
                    self._issue(run, name, f"{name}.crl", "bad CRL signature")
                    crl = None
                elif not crl.valid_at(self.now):
                    self._issue(run, name, f"{name}.crl", "CRL stale")
                    crl = None

        if manifest is not None:
            for entry_name, entry_digest in manifest.entries:
                published = point.get(entry_name)
                if published is None:
                    self._issue(run, name, entry_name,
                                "listed in manifest but missing from repository")
                elif sha256_hex(published.data) != entry_digest:
                    self._issue(run, name, entry_name,
                                "hash mismatch with manifest (substituted?)")
        return manifest, crl

    def _validate_ca(
        self,
        run: ValidationRun,
        ca_cert: ResourceCertificate,
        context: _ResourceContext,
        visited: set[str],
    ) -> None:
        name = ca_cert.subject
        if name in visited:
            self._issue(run, name, f"{name}.cer", "CA cycle detected")
            return
        visited.add(name)
        run.cas_seen += 1

        if name not in self.repository:
            # A CA with no publication point issues nothing; not an error.
            return
        point = self.repository.point_for(name)
        manifest, crl = self._load_manifest_and_crl(run, ca_cert)

        for obj in point.objects():
            if obj.name in (f"{name}.mft", f"{name}.crl", f"{name}.cer"):
                continue
            if manifest is not None and not manifest.lists(obj.name, obj.data):
                self._issue(run, name, obj.name,
                            "not listed in manifest (or hash mismatch)")
                continue
            if obj.kind == ObjectKind.CERTIFICATE:
                self._validate_child_cert(run, ca_cert, context, crl, obj.name,
                                          obj.data, visited)
            elif obj.kind == ObjectKind.ROA:
                self._validate_roa_object(run, ca_cert, context, crl, obj.name,
                                          obj.data)

    def _validate_child_cert(
        self,
        run: ValidationRun,
        ca_cert: ResourceCertificate,
        context: _ResourceContext,
        crl: Optional[Crl],
        obj_name: str,
        data: bytes,
        visited: set[str],
    ) -> None:
        name = ca_cert.subject
        try:
            child = ResourceCertificate.from_der(data)
        except ReproError as exc:
            self._issue(run, name, obj_name, f"undecodable certificate: {exc}")
            return
        if not child.is_ca:
            # EE certificates only appear inside signed objects.
            self._issue(run, name, obj_name, "stray EE certificate")
            return
        if not child.verify_signature(ca_cert.public_key):
            self._issue(run, name, obj_name, "bad certificate signature")
            return
        if not child.valid_at(self.now):
            self._issue(run, name, obj_name, "certificate expired or not yet valid")
            return
        if crl is not None and crl.revokes(child.serial):
            self._issue(run, name, obj_name, f"serial {child.serial} revoked")
            return
        if not child.resources_within(ca_cert):
            self._issue(run, name, obj_name,
                        "over-claiming: child resources exceed issuer's")
            return
        child_context = context.resolve(child)
        self._validate_ca(run, child, child_context, visited)

    def _validate_roa_object(
        self,
        run: ValidationRun,
        ca_cert: ResourceCertificate,
        context: _ResourceContext,
        crl: Optional[Crl],
        obj_name: str,
        data: bytes,
    ) -> None:
        name = ca_cert.subject
        run.roas_seen += 1
        try:
            signed = SignedObject.from_der(data)
        except ReproError as exc:
            self._issue(run, name, obj_name, f"undecodable signed object: {exc}")
            return
        if signed.econtent_type != OID_ROA_ECONTENT:
            self._issue(run, name, obj_name, "wrong eContentType for a ROA")
            return
        ee = signed.ee_cert
        if ee.is_ca:
            self._issue(run, name, obj_name, "ROA signed by a CA certificate")
            return
        if not ee.verify_signature(ca_cert.public_key):
            self._issue(run, name, obj_name, "EE certificate not signed by this CA")
            return
        if not ee.valid_at(self.now):
            self._issue(run, name, obj_name, "EE certificate expired")
            return
        if crl is not None and crl.revokes(ee.serial):
            self._issue(run, name, obj_name, f"EE serial {ee.serial} revoked")
            return
        if not signed.verify():
            self._issue(run, name, obj_name, "bad signature over eContent")
            return
        try:
            roa = Roa.from_econtent(signed.econtent)
        except ReproError as exc:
            self._issue(run, name, obj_name, f"bad ROA eContent: {exc}")
            return
        roa_prefixes = tuple(entry.prefix for entry in roa.prefixes)
        ee_context = context.resolve(ee)
        if not ee.covers_prefixes(roa_prefixes) and ee.ip_resources != INHERIT:
            self._issue(run, name, obj_name,
                        "ROA prefixes not covered by EE certificate resources")
            return
        if not ee_context.covers_prefixes(roa_prefixes):
            self._issue(run, name, obj_name,
                        "ROA prefixes exceed the CA chain's resources")
            return
        run.roas.append(roa)
        run.vrps.extend(roa.vrps())
