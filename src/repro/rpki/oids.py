"""Object identifiers used by the simulated RPKI profiles."""

from ..asn1 import ObjectIdentifier

#: RFC 6482: id-ct-routeOriginAuthz
OID_ROA_ECONTENT = ObjectIdentifier("1.2.840.113549.1.9.16.1.24")

#: RFC 6486: id-ct-rpkiManifest
OID_MANIFEST_ECONTENT = ObjectIdentifier("1.2.840.113549.1.9.16.1.26")

#: RFC 8017: sha256WithRSAEncryption
OID_SHA256_RSA = ObjectIdentifier("1.2.840.113549.1.1.11")

#: RFC 3779: id-pe-ipAddrBlocks
OID_IP_RESOURCES = ObjectIdentifier("1.3.6.1.5.5.7.1.7")

#: RFC 3779: id-pe-autonomousSysIds
OID_AS_RESOURCES = ObjectIdentifier("1.3.6.1.5.5.7.1.8")
