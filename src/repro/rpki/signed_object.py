"""Signed RPKI objects (simplified CMS SignedData, RFC 6488 profile).

Every RPKI payload (ROA, manifest) travels inside a signed envelope:
the eContent bytes, the one-time end-entity (EE) certificate whose key
signed them, and the signature itself.  Real RPKI uses full CMS; we keep
the three fields that carry the security semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..asn1 import (
    Asn1Error,
    ObjectIdentifier,
    OctetString,
    Sequence_,
    decode,
    encode,
)
from ..netbase.errors import ValidationError
from .cert import ResourceCertificate

__all__ = ["SignedObject"]


@dataclass(frozen=True)
class SignedObject:
    """An eContent blob signed by an EE certificate's key.

    Attributes:
        econtent_type: OID naming the payload profile (ROA, manifest).
        econtent: the DER payload bytes.
        ee_cert: the end-entity certificate; its public key must verify
            ``signature``, and its resources must cover the payload.
        signature: EE-key signature over ``econtent``.
    """

    econtent_type: ObjectIdentifier
    econtent: bytes
    ee_cert: ResourceCertificate
    signature: bytes

    def verify(self) -> bool:
        """Check the EE signature over the payload (not the chain)."""
        return self.ee_cert.public_key.verify(self.econtent, self.signature)

    def to_der(self) -> bytes:
        return encode(
            Sequence_(
                [
                    self.econtent_type,
                    OctetString(self.econtent),
                    OctetString(self.ee_cert.to_der()),
                    OctetString(self.signature),
                ]
            )
        )

    @classmethod
    def from_der(cls, data: bytes) -> "SignedObject":
        try:
            outer = decode(data)
        except Asn1Error as exc:
            raise ValidationError(f"bad signed object DER: {exc}") from exc
        if (
            not isinstance(outer, Sequence_)
            or len(outer.elements) != 4
            or not isinstance(outer.elements[0], ObjectIdentifier)
            or not isinstance(outer.elements[1], OctetString)
            or not isinstance(outer.elements[2], OctetString)
            or not isinstance(outer.elements[3], OctetString)
        ):
            raise ValidationError("signed object must be {oid, content, cert, sig}")
        return cls(
            econtent_type=outer.elements[0],
            econtent=outer.elements[1].value,
            ee_cert=ResourceCertificate.from_der(outer.elements[2].value),
            signature=outer.elements[3].value,
        )
