"""Resource certificates (simplified RFC 6487 / RFC 3779 profile).

An RPKI certificate binds a public key to a set of Internet number
resources: IP prefixes and AS numbers.  The profile here keeps the parts
that matter to the paper's threat model — the resource extensions, the
issuer chain, validity windows, and signatures — and drops X.509
baggage (name encodings, extension criticality, algorithm agility).

Differences from the real profile are documented in DESIGN.md; the
validation *logic* (resource containment down the chain, expiry,
revocation) matches RFC 6487 §7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..asn1 import (
    Asn1Error,
    BitString,
    ContextTag,
    Integer,
    ObjectIdentifier,
    OctetString,
    Sequence_,
    Utf8String,
    decode,
    encode,
)
from ..crypto import RsaPrivateKey, RsaPublicKey
from ..netbase import Prefix
from ..netbase.errors import ValidationError
from .oids import OID_SHA256_RSA

__all__ = ["AsRange", "ResourceCertificate", "INHERIT"]

#: Sentinel meaning "inherit resources from the issuer" (RFC 3779 §2.2.3.5).
INHERIT = "inherit"


@dataclass(frozen=True, order=True)
class AsRange:
    """An inclusive range of AS numbers."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValidationError(f"AS range {self.low}-{self.high} inverted")

    def contains(self, asn: int) -> bool:
        return self.low <= asn <= self.high

    def contains_range(self, other: "AsRange") -> bool:
        return self.low <= other.low and other.high <= self.high

    def __str__(self) -> str:
        if self.low == self.high:
            return f"AS{self.low}"
        return f"AS{self.low}-AS{self.high}"


def _ip_resources_cover(
    resources: Sequence[Prefix], candidates: Iterable[Prefix]
) -> bool:
    return all(
        any(block.covers(candidate) for block in resources)
        for candidate in candidates
    )


@dataclass(frozen=True)
class ResourceCertificate:
    """A signed resource certificate.

    Attributes:
        serial: issuer-unique serial number.
        issuer: issuer CA name.
        subject: subject name.
        public_key: the certified key.
        not_before / not_after: validity window (unix seconds).
        is_ca: True for CA certificates, False for end-entity (EE).
        ip_resources: tuple of prefixes the subject controls, or the
            string :data:`INHERIT`.
        as_resources: tuple of :class:`AsRange`, or :data:`INHERIT`.
        signature: issuer signature over :meth:`tbs_der`.
    """

    serial: int
    issuer: str
    subject: str
    public_key: RsaPublicKey
    not_before: int
    not_after: int
    is_ca: bool
    ip_resources: tuple[Prefix, ...] | str
    as_resources: tuple[AsRange, ...] | str
    signature: bytes = b""

    def __post_init__(self) -> None:
        if isinstance(self.ip_resources, str) and self.ip_resources != INHERIT:
            raise ValidationError(f"bad ip_resources marker {self.ip_resources!r}")
        if isinstance(self.as_resources, str) and self.as_resources != INHERIT:
            raise ValidationError(f"bad as_resources marker {self.as_resources!r}")
        if self.not_after < self.not_before:
            raise ValidationError("certificate validity window inverted")

    # ------------------------------------------------------------------
    # Resource logic
    # ------------------------------------------------------------------

    def covers_prefixes(self, prefixes: Iterable[Prefix]) -> bool:
        """True if this cert's own (non-inherit) IP resources cover all.

        Inherit is resolved by the validator, which walks the chain; at
        this level an inherit cert covers nothing by itself.
        """
        if self.ip_resources == INHERIT:
            return False
        assert isinstance(self.ip_resources, tuple)
        return _ip_resources_cover(self.ip_resources, prefixes)

    def covers_asn(self, asn: int) -> bool:
        if self.as_resources == INHERIT:
            return False
        assert isinstance(self.as_resources, tuple)
        return any(block.contains(asn) for block in self.as_resources)

    def resources_within(self, issuer_cert: "ResourceCertificate") -> bool:
        """RFC 6487 §7.2: subject resources must be a subset of issuer's.

        Inherit always passes (the subject has exactly the issuer's
        resources).
        """
        ip_ok = (
            self.ip_resources == INHERIT
            or issuer_cert.ip_resources == INHERIT
            or _ip_resources_cover(
                issuer_cert.ip_resources, self.ip_resources  # type: ignore[arg-type]
            )
        )
        as_ok = (
            self.as_resources == INHERIT
            or issuer_cert.as_resources == INHERIT
            or all(
                any(
                    parent.contains_range(child)
                    for parent in issuer_cert.as_resources  # type: ignore[union-attr]
                )
                for child in self.as_resources  # type: ignore[union-attr]
            )
        )
        return ip_ok and as_ok

    def valid_at(self, now: int) -> bool:
        return self.not_before <= now <= self.not_after

    # ------------------------------------------------------------------
    # Encoding and signing
    # ------------------------------------------------------------------

    def tbs_der(self) -> bytes:
        """DER of the to-be-signed portion (everything but the signature)."""
        if self.ip_resources == INHERIT:
            ip_part: ContextTag | Sequence_ = ContextTag(1, Utf8String(INHERIT))
        else:
            assert isinstance(self.ip_resources, tuple)
            ip_part = Sequence_(
                [
                    Sequence_([Integer(p.family), BitString(p.bits())])
                    for p in sorted(self.ip_resources)
                ]
            )
        if self.as_resources == INHERIT:
            as_part: ContextTag | Sequence_ = ContextTag(2, Utf8String(INHERIT))
        else:
            assert isinstance(self.as_resources, tuple)
            as_part = Sequence_(
                [
                    Sequence_([Integer(r.low), Integer(r.high)])
                    for r in sorted(self.as_resources)
                ]
            )
        return encode(
            Sequence_(
                [
                    Integer(self.serial),
                    Utf8String(self.issuer),
                    Utf8String(self.subject),
                    Sequence_(
                        [
                            OID_SHA256_RSA,
                            Integer(self.public_key.modulus),
                            Integer(self.public_key.exponent),
                        ]
                    ),
                    Integer(self.not_before),
                    Integer(self.not_after),
                    Integer(1 if self.is_ca else 0),
                    ip_part,
                    as_part,
                ]
            )
        )

    def to_der(self) -> bytes:
        """Full certificate: SEQUENCE { tbs, signature OCTET STRING }."""
        return encode(
            Sequence_(
                [
                    OctetString(self.tbs_der()),
                    OctetString(self.signature),
                ]
            )
        )

    @classmethod
    def from_der(cls, data: bytes) -> "ResourceCertificate":
        try:
            outer = decode(data)
        except Asn1Error as exc:
            raise ValidationError(f"bad certificate DER: {exc}") from exc
        if (
            not isinstance(outer, Sequence_)
            or len(outer.elements) != 2
            or not isinstance(outer.elements[0], OctetString)
            or not isinstance(outer.elements[1], OctetString)
        ):
            raise ValidationError("certificate must be SEQUENCE {tbs, sig}")
        tbs_bytes, signature = outer.elements[0].value, outer.elements[1].value
        try:
            tbs = decode(tbs_bytes)
        except Asn1Error as exc:
            raise ValidationError(f"bad TBS DER: {exc}") from exc
        if not isinstance(tbs, Sequence_) or len(tbs.elements) != 9:
            raise ValidationError("bad TBS structure")
        (serial, issuer, subject, key_info, not_before, not_after, is_ca,
         ip_part, as_part) = tbs.elements
        if not (
            isinstance(serial, Integer)
            and isinstance(issuer, Utf8String)
            and isinstance(subject, Utf8String)
            and isinstance(key_info, Sequence_)
            and len(key_info.elements) == 3
            and isinstance(key_info.elements[0], ObjectIdentifier)
            and isinstance(key_info.elements[1], Integer)
            and isinstance(key_info.elements[2], Integer)
            and isinstance(not_before, Integer)
            and isinstance(not_after, Integer)
            and isinstance(is_ca, Integer)
        ):
            raise ValidationError("bad TBS field types")

        ip_resources: tuple[Prefix, ...] | str
        if isinstance(ip_part, ContextTag) and ip_part.number == 1:
            ip_resources = INHERIT
        elif isinstance(ip_part, Sequence_):
            prefixes = []
            for element in ip_part.elements:
                if (
                    not isinstance(element, Sequence_)
                    or len(element.elements) != 2
                    or not isinstance(element.elements[0], Integer)
                    or not isinstance(element.elements[1], BitString)
                ):
                    raise ValidationError("bad IP resource entry")
                prefixes.append(
                    Prefix.from_bits(
                        element.elements[0].value, element.elements[1].bits
                    )
                )
            ip_resources = tuple(prefixes)
        else:
            raise ValidationError("bad IP resources")

        as_resources: tuple[AsRange, ...] | str
        if isinstance(as_part, ContextTag) and as_part.number == 2:
            as_resources = INHERIT
        elif isinstance(as_part, Sequence_):
            ranges = []
            for element in as_part.elements:
                if (
                    not isinstance(element, Sequence_)
                    or len(element.elements) != 2
                    or not isinstance(element.elements[0], Integer)
                    or not isinstance(element.elements[1], Integer)
                ):
                    raise ValidationError("bad AS resource entry")
                ranges.append(
                    AsRange(element.elements[0].value, element.elements[1].value)
                )
            as_resources = tuple(ranges)
        else:
            raise ValidationError("bad AS resources")

        return cls(
            serial=serial.value,
            issuer=issuer.value,
            subject=subject.value,
            public_key=RsaPublicKey(
                key_info.elements[1].value, key_info.elements[2].value
            ),
            not_before=not_before.value,
            not_after=not_after.value,
            is_ca=bool(is_ca.value),
            ip_resources=ip_resources,
            as_resources=as_resources,
            signature=signature,
        )

    def verify_signature(self, issuer_key: RsaPublicKey) -> bool:
        """True iff ``signature`` verifies over the TBS with the key."""
        return issuer_key.verify(self.tbs_der(), self.signature)

    @classmethod
    def build_and_sign(
        cls,
        *,
        serial: int,
        issuer: str,
        subject: str,
        public_key: RsaPublicKey,
        not_before: int,
        not_after: int,
        is_ca: bool,
        ip_resources: tuple[Prefix, ...] | str,
        as_resources: tuple[AsRange, ...] | str,
        issuer_key: RsaPrivateKey,
    ) -> "ResourceCertificate":
        """Create a certificate and sign it with the issuer's key."""
        unsigned = cls(
            serial=serial,
            issuer=issuer,
            subject=subject,
            public_key=public_key,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            ip_resources=(
                ip_resources
                if isinstance(ip_resources, str)
                else tuple(sorted(ip_resources))
            ),
            as_resources=(
                as_resources
                if isinstance(as_resources, str)
                else tuple(sorted(as_resources))
            ),
        )
        signature = issuer_key.sign(unsigned.tbs_der())
        return cls(
            **{
                **unsigned.__dict__,
                "signature": signature,
            }
        )

    def __str__(self) -> str:
        kind = "CA" if self.is_ca else "EE"
        return f"<{kind} cert #{self.serial} {self.issuer} -> {self.subject}>"
