"""``scan_roas`` — turn validated ROAs into router-ready tuples.

The RPKI Relying Party tools ship a utility of this name that converts a
directory of cryptographically validated ROAs into (IP prefix,
maxLength, origin AS) tuples; the paper's ``compress_roas`` is a drop-in
replacement that post-processes its output (§7.1).  This module provides
the same two entry points our pipeline composes:

* :func:`scan_roas` — full path: validate a repository, emit VRPs.
* :func:`scan_roa_payloads` — fast path: payload objects straight to
  VRPs, used by the synthetic measurement datasets where the crypto
  envelope has already been stripped.
"""

from __future__ import annotations

from typing import Iterable

from .cert import ResourceCertificate
from .repository import Repository
from .roa import Roa
from .validator import RelyingParty, ValidationRun
from .vrp import Vrp

__all__ = ["scan_roas", "scan_roa_payloads"]


def scan_roas(
    repository: Repository,
    trust_anchors: list[ResourceCertificate],
    *,
    now: int = 0,
) -> ValidationRun:
    """Validate ``repository`` and return the run (VRPs + issues).

    The VRP list in the result is what the local cache would feed to the
    RTR server — and what ``compress_roas`` takes as input.
    """
    return RelyingParty(repository, trust_anchors, now=now).validate()


def scan_roa_payloads(roas: Iterable[Roa]) -> list[Vrp]:
    """Convert already-validated ROA payloads to a sorted VRP list.

    Duplicate tuples are collapsed: two ROAs authorizing the same
    (prefix, maxLength, ASN) yield one VRP, matching how RTR caches
    deduplicate announcements.
    """
    unique: set[Vrp] = set()
    for roa in roas:
        unique.update(roa.vrps())
    return sorted(unique)
