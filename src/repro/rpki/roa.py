"""Route Origin Authorizations (RFC 6482 profile).

A ROA authorizes one AS to originate a *set* of IP prefixes, each with an
optional maxLength.  This module models the ROA eContent and its DER
encoding exactly per RFC 6482:

.. code-block:: text

    RouteOriginAttestation ::= SEQUENCE {
        version [0] INTEGER DEFAULT 0,
        asID ASID,
        ipAddrBlocks SEQUENCE OF ROAIPAddressFamily }

    ROAIPAddressFamily ::= SEQUENCE {
        addressFamily OCTET STRING (SIZE (2..3)),
        addresses SEQUENCE OF ROAIPAddress }

    ROAIPAddress ::= SEQUENCE {
        address IPAddress,          -- BIT STRING, RFC 3779 style
        maxLength INTEGER OPTIONAL }

The cryptographic envelope (a simplified CMS SignedData) lives in
:mod:`repro.rpki.signed_object`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..asn1 import (
    Asn1Error,
    Asn1Value,
    BitString,
    ContextTag,
    Integer,
    OctetString,
    Sequence_,
    decode,
    encode,
)
from ..netbase import AF_INET, AF_INET6, Prefix, validate_asn
from ..netbase.errors import PrefixLengthError, ValidationError
from .vrp import Vrp

__all__ = ["RoaPrefix", "Roa"]

_AFI_BYTES = {AF_INET: b"\x00\x01", AF_INET6: b"\x00\x02"}
_AFI_FAMILY = {v: k for k, v in _AFI_BYTES.items()}


@dataclass(frozen=True)
class RoaPrefix:
    """One (prefix, optional maxLength) entry inside a ROA.

    ``max_length`` of None means "not present": the ROA authorizes only
    the exact prefix length (RFC 6482 §3.3).  Entries order by
    (prefix, effective maxLength), with an absent maxLength sorting
    before an explicit equal one.
    """

    prefix: Prefix
    max_length: Optional[int] = None

    def _sort_key(self) -> tuple[Prefix, int, int]:
        return (
            self.prefix,
            self.effective_max_length,
            0 if self.max_length is None else 1,
        )

    def __lt__(self, other: "RoaPrefix") -> bool:
        if not isinstance(other, RoaPrefix):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __post_init__(self) -> None:
        if self.max_length is None:
            return
        if self.max_length < self.prefix.length:
            raise PrefixLengthError(
                f"maxLength {self.max_length} < length of {self.prefix}"
            )
        if self.max_length > self.prefix.max_family_length:
            raise PrefixLengthError(
                f"maxLength {self.max_length} exceeds IPv{self.prefix.family} width"
            )

    @property
    def effective_max_length(self) -> int:
        """The maxLength in force: explicit value or the prefix length."""
        return self.max_length if self.max_length is not None else self.prefix.length

    @property
    def uses_max_length(self) -> bool:
        """True if an explicit maxLength extends beyond the prefix length."""
        return self.max_length is not None and self.max_length > self.prefix.length

    def __str__(self) -> str:
        if self.max_length is not None:
            return f"{self.prefix}-{self.max_length}"
        return str(self.prefix)


@dataclass(frozen=True)
class Roa:
    """A Route Origin Authorization: one AS, a set of prefixes.

    Attributes:
        asn: the authorized origin AS.
        prefixes: the authorized entries (kept sorted for deterministic
            encoding; DER requires a canonical form anyway).
        version: RFC 6482 version, always 0 today.
    """

    asn: int
    prefixes: tuple[RoaPrefix, ...]
    version: int = 0

    def __init__(
        self,
        asn: int,
        prefixes: Iterable[RoaPrefix | Prefix],
        version: int = 0,
    ) -> None:
        validate_asn(asn)
        normalized = tuple(
            sorted(
                entry if isinstance(entry, RoaPrefix) else RoaPrefix(entry)
                for entry in prefixes
            )
        )
        if not normalized:
            raise ValidationError("a ROA must contain at least one prefix")
        object.__setattr__(self, "asn", asn)
        object.__setattr__(self, "prefixes", normalized)
        object.__setattr__(self, "version", version)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def vrps(self) -> list[Vrp]:
        """The VRPs this ROA yields once validated."""
        return [
            Vrp(entry.prefix, entry.effective_max_length, self.asn)
            for entry in self.prefixes
        ]

    @property
    def uses_max_length(self) -> bool:
        """True if any entry has an effective maxLength beyond its length."""
        return any(entry.uses_max_length for entry in self.prefixes)

    def authorizes(self, prefix: Prefix, origin_asn: int) -> bool:
        """RFC 6811 matching against any entry of this ROA."""
        if origin_asn != self.asn:
            return False
        return any(
            entry.prefix.covers(prefix)
            and prefix.length <= entry.effective_max_length
            for entry in self.prefixes
        )

    def covered_families(self) -> set[int]:
        return {entry.prefix.family for entry in self.prefixes}

    def __str__(self) -> str:
        inner = ", ".join(str(entry) for entry in self.prefixes)
        return f"ROA:({{{inner}}}, AS{self.asn})"

    # ------------------------------------------------------------------
    # RFC 6482 DER encoding
    # ------------------------------------------------------------------

    def to_econtent(self) -> bytes:
        """DER-encode the RouteOriginAttestation eContent."""
        families: dict[int, list[RoaPrefix]] = {}
        for entry in self.prefixes:
            families.setdefault(entry.prefix.family, []).append(entry)

        family_blocks = []
        for family in sorted(families):  # v4 (AFI 1) before v6 (AFI 2)
            addresses = []
            for entry in families[family]:
                elements: list[Asn1Value] = [BitString(entry.prefix.bits())]
                if entry.max_length is not None:
                    elements.append(Integer(entry.max_length))
                addresses.append(Sequence_(elements))
            family_blocks.append(
                Sequence_([
                    OctetString(_AFI_BYTES[family]),
                    Sequence_(addresses),
                ])
            )

        top_elements: list[Asn1Value] = []
        if self.version != 0:  # DEFAULT 0 must be omitted in DER
            top_elements.append(ContextTag(0, Integer(self.version)))
        top_elements.append(Integer(self.asn))
        top_elements.append(Sequence_(family_blocks))
        return encode(Sequence_(top_elements))

    @classmethod
    def from_econtent(cls, data: bytes) -> "Roa":
        """Decode a DER RouteOriginAttestation back into a :class:`Roa`."""
        try:
            top = decode(data)
        except Asn1Error as exc:
            raise ValidationError(f"bad ROA eContent DER: {exc}") from exc
        if not isinstance(top, Sequence_) or not top.elements:
            raise ValidationError("ROA eContent is not a SEQUENCE")

        elements = list(top.elements)
        version = 0
        if isinstance(elements[0], ContextTag):
            tag = elements.pop(0)
            if tag.number != 0 or not isinstance(tag.inner, Integer):
                raise ValidationError("bad ROA version tag")
            version = tag.inner.value
            if version == 0:
                raise ValidationError("DER forbids encoding DEFAULT version 0")
        if len(elements) != 2:
            raise ValidationError("ROA eContent must be [version] asID blocks")
        as_id, blocks = elements
        if not isinstance(as_id, Integer) or not isinstance(blocks, Sequence_):
            raise ValidationError("bad ROA asID / ipAddrBlocks")

        prefixes: list[RoaPrefix] = []
        for block in blocks.elements:
            if (
                not isinstance(block, Sequence_)
                or len(block.elements) != 2
                or not isinstance(block.elements[0], OctetString)
                or not isinstance(block.elements[1], Sequence_)
            ):
                raise ValidationError("bad ROAIPAddressFamily")
            afi = block.elements[0].value
            if afi not in _AFI_FAMILY:
                raise ValidationError(f"unknown AFI {afi.hex()}")
            family = _AFI_FAMILY[afi]
            for address in block.elements[1].elements:
                if not isinstance(address, Sequence_) or not address.elements:
                    raise ValidationError("bad ROAIPAddress")
                bit_string = address.elements[0]
                if not isinstance(bit_string, BitString):
                    raise ValidationError("ROAIPAddress.address must be BIT STRING")
                prefix = Prefix.from_bits(family, bit_string.bits)
                max_length: Optional[int] = None
                if len(address.elements) == 2:
                    ml = address.elements[1]
                    if not isinstance(ml, Integer):
                        raise ValidationError("maxLength must be INTEGER")
                    max_length = ml.value
                elif len(address.elements) > 2:
                    raise ValidationError("ROAIPAddress has extra fields")
                prefixes.append(RoaPrefix(prefix, max_length))
        return cls(as_id.value, prefixes, version=version)
