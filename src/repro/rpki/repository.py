"""RPKI publication points and the global repository.

Each CA publishes its products — child CA certificates, signed ROAs, a
manifest, and a CRL — at a publication point (in the real RPKI, an
rsync/RRDP URI).  A relying party "downloads" the complete set of
publication points and validates them bottom-up.

We model a publication point as a name→bytes store (the bytes are real
DER produced by the object classes), and the repository as a collection
of publication points keyed by CA name.  This mirrors Figure 1 of the
paper: repositories feed the local cache, which feeds routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["ObjectKind", "PublishedObject", "PublicationPoint", "Repository"]


class ObjectKind:
    """File-type tags, mirroring the real RPKI's file extensions."""

    CERTIFICATE = "cer"
    ROA = "roa"
    MANIFEST = "mft"
    CRL = "crl"


@dataclass(frozen=True)
class PublishedObject:
    """A named blob at a publication point."""

    name: str
    kind: str
    data: bytes


@dataclass
class PublicationPoint:
    """One CA's publication directory."""

    authority: str
    _objects: dict[str, PublishedObject] = field(default_factory=dict)

    def publish(self, name: str, kind: str, data: bytes) -> None:
        """Add or replace an object."""
        self._objects[name] = PublishedObject(name, kind, data)

    def withdraw(self, name: str) -> bool:
        """Remove an object; True if it existed."""
        return self._objects.pop(name, None) is not None

    def get(self, name: str) -> Optional[PublishedObject]:
        return self._objects.get(name)

    def objects(self, kind: Optional[str] = None) -> Iterator[PublishedObject]:
        """All objects, optionally filtered by kind, in name order."""
        for name in sorted(self._objects):
            obj = self._objects[name]
            if kind is None or obj.kind == kind:
                yield obj

    def names(self) -> list[str]:
        return sorted(self._objects)

    def __len__(self) -> int:
        return len(self._objects)


class Repository:
    """The union of all publication points, keyed by CA name."""

    def __init__(self) -> None:
        self._points: dict[str, PublicationPoint] = {}

    def point_for(self, authority: str) -> PublicationPoint:
        """The publication point for a CA, created on first use."""
        if authority not in self._points:
            self._points[authority] = PublicationPoint(authority)
        return self._points[authority]

    def points(self) -> Iterator[PublicationPoint]:
        for authority in sorted(self._points):
            yield self._points[authority]

    def total_objects(self) -> int:
        return sum(len(point) for point in self._points.values())

    def __contains__(self, authority: str) -> bool:
        return authority in self._points
