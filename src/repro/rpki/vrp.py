"""Validated ROA Payloads (VRPs).

A VRP is the unit of information a relying party extracts from a
cryptographically valid ROA and ships to routers over RPKI-to-Router:
one ``(IP prefix, maxLength, origin AS)`` triple — what the paper calls
a "PDU" or "tuple" throughout §6–§7.  Every measurement in the paper is
a function of a multiset of VRPs and a BGP table, so this type is the
lingua franca between :mod:`repro.rpki`, :mod:`repro.core`,
:mod:`repro.rtr`, and :mod:`repro.analysis`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..netbase import Prefix, validate_asn
from ..netbase.errors import PrefixLengthError

__all__ = ["Vrp", "parse_vrp", "sort_vrps"]


@dataclass(frozen=True, order=True, slots=True)
class Vrp:
    """One validated (prefix, maxLength, origin AS) authorization.

    Attributes:
        prefix: the authorized IP prefix.
        max_length: longest subprefix length the origin may announce;
            always ``>= prefix.length`` and bounded by the family width.
        asn: the authorized origin AS number.
    """

    prefix: Prefix
    max_length: int
    asn: int

    def __post_init__(self) -> None:
        validate_asn(self.asn)
        if self.max_length < self.prefix.length:
            raise PrefixLengthError(
                f"maxLength {self.max_length} shorter than prefix {self.prefix}"
            )
        if self.max_length > self.prefix.max_family_length:
            raise PrefixLengthError(
                f"maxLength {self.max_length} exceeds IPv{self.prefix.family} width"
            )

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    @property
    def uses_max_length(self) -> bool:
        """True if the VRP authorizes more lengths than the bare prefix.

        §6 of the paper measures "prefixes in ROAs [that] have a
        maxLength longer than the prefix length" — exactly this flag.
        """
        return self.max_length > self.prefix.length

    def covers(self, prefix: Prefix) -> bool:
        """RFC 6811 "covering": ``prefix`` is inside this VRP's prefix.

        Covering ignores maxLength — a covered-but-too-long announcement
        is what makes a route *invalid* rather than *notfound*.
        """
        return self.prefix.covers(prefix)

    def matches(self, prefix: Prefix, origin_asn: int) -> bool:
        """RFC 6811 "matching": covered, within maxLength, same origin."""
        return (
            self.prefix.covers(prefix)
            and prefix.length <= self.max_length
            and origin_asn == self.asn
        )

    def authorized_prefixes(self) -> Iterable[Prefix]:
        """Every prefix this VRP authorizes (all lengths up to maxLength).

        The count doubles per extra length unit; callers sweeping
        maximally-permissive VRPs should use :meth:`authorized_count`.
        """
        for length in range(self.prefix.length, self.max_length + 1):
            yield from self.prefix.subprefixes(length)

    def authorized_count(self) -> int:
        """Number of distinct prefixes authorized (closed form)."""
        spread = self.max_length - self.prefix.length
        return (1 << (spread + 1)) - 1

    def key(self) -> tuple[Prefix, int, int]:
        return (self.prefix, self.max_length, self.asn)

    def __str__(self) -> str:
        if self.uses_max_length:
            return f"{self.prefix}-{self.max_length} => AS{self.asn}"
        return f"{self.prefix} => AS{self.asn}"


def parse_vrp(text: str) -> Vrp:
    """Parse the textual form produced by :meth:`Vrp.__str__`.

    Accepts ``"10.0.0.0/16-24 => AS65000"`` and ``"10.0.0.0/16 => AS65000"``.
    """
    left, _, right = text.partition("=>")
    right = right.strip()
    if right.upper().startswith("AS"):
        right = right[2:]
    asn = int(right)
    left = left.strip()
    if "-" in left.rsplit("/", 1)[-1]:
        prefix_text, _, max_text = left.rpartition("-")
        return Vrp(Prefix.parse(prefix_text), int(max_text), asn)
    prefix = Prefix.parse(left)
    return Vrp(prefix, prefix.length, asn)


def sort_vrps(vrps: Iterable[Vrp]) -> list[Vrp]:
    """Deterministic ordering: by prefix, then maxLength, then ASN."""
    return sorted(vrps)
