"""Manifests (RFC 6486) and CRLs for publication points.

A manifest lists every object a CA currently publishes together with its
SHA-256 hash, so a relying party can detect deletions and substitutions.
A CRL revokes certificates by serial number.  Both are signed by the
issuing CA (we skip the EE indirection for these two object types; the
trust semantics are identical and DESIGN.md records the simplification).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..asn1 import (
    Asn1Error,
    Integer,
    OctetString,
    Sequence_,
    Utf8String,
    decode,
    encode,
)
from ..crypto import RsaPrivateKey, RsaPublicKey
from ..netbase.errors import ValidationError

__all__ = ["Manifest", "Crl", "sha256_hex"]


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256, the hash manifests carry per file."""
    return hashlib.sha256(data).hexdigest()


@dataclass(frozen=True)
class Manifest:
    """A signed listing of (file name, SHA-256) pairs.

    Attributes:
        issuer: publishing CA name.
        manifest_number: monotonically increasing issue counter.
        this_update / next_update: validity window (unix seconds).
        entries: tuple of (name, sha256-hex) pairs, sorted by name.
        signature: CA signature over the TBS DER.
    """

    issuer: str
    manifest_number: int
    this_update: int
    next_update: int
    entries: tuple[tuple[str, str], ...]
    signature: bytes = b""

    def tbs_der(self) -> bytes:
        return encode(
            Sequence_(
                [
                    Utf8String(self.issuer),
                    Integer(self.manifest_number),
                    Integer(self.this_update),
                    Integer(self.next_update),
                    Sequence_(
                        [
                            Sequence_([Utf8String(name), Utf8String(digest)])
                            for name, digest in sorted(self.entries)
                        ]
                    ),
                ]
            )
        )

    def to_der(self) -> bytes:
        return encode(
            Sequence_([OctetString(self.tbs_der()), OctetString(self.signature)])
        )

    @classmethod
    def from_der(cls, data: bytes) -> "Manifest":
        try:
            outer = decode(data)
        except Asn1Error as exc:
            raise ValidationError(f"bad manifest DER: {exc}") from exc
        if (
            not isinstance(outer, Sequence_)
            or len(outer.elements) != 2
            or not isinstance(outer.elements[0], OctetString)
            or not isinstance(outer.elements[1], OctetString)
        ):
            raise ValidationError("manifest must be {tbs, sig}")
        tbs = decode(outer.elements[0].value)
        if not isinstance(tbs, Sequence_) or len(tbs.elements) != 5:
            raise ValidationError("bad manifest TBS")
        issuer, number, this_update, next_update, listing = tbs.elements
        if not (
            isinstance(issuer, Utf8String)
            and isinstance(number, Integer)
            and isinstance(this_update, Integer)
            and isinstance(next_update, Integer)
            and isinstance(listing, Sequence_)
        ):
            raise ValidationError("bad manifest TBS fields")
        entries = []
        for element in listing.elements:
            if (
                not isinstance(element, Sequence_)
                or len(element.elements) != 2
                or not isinstance(element.elements[0], Utf8String)
                or not isinstance(element.elements[1], Utf8String)
            ):
                raise ValidationError("bad manifest entry")
            entries.append((element.elements[0].value, element.elements[1].value))
        return cls(
            issuer=issuer.value,
            manifest_number=number.value,
            this_update=this_update.value,
            next_update=next_update.value,
            entries=tuple(entries),
            signature=outer.elements[1].value,
        )

    def sign_with(self, key: RsaPrivateKey) -> "Manifest":
        return Manifest(
            issuer=self.issuer,
            manifest_number=self.manifest_number,
            this_update=self.this_update,
            next_update=self.next_update,
            entries=self.entries,
            signature=key.sign(self.tbs_der()),
        )

    def verify_signature(self, key: RsaPublicKey) -> bool:
        return key.verify(self.tbs_der(), self.signature)

    def lists(self, name: str, data: bytes) -> bool:
        """True if ``name`` is listed with the hash of ``data``."""
        digest = sha256_hex(data)
        return any(
            entry_name == name and entry_digest == digest
            for entry_name, entry_digest in self.entries
        )

    def valid_at(self, now: int) -> bool:
        return self.this_update <= now <= self.next_update


@dataclass(frozen=True)
class Crl:
    """A signed certificate revocation list (serial numbers)."""

    issuer: str
    crl_number: int
    this_update: int
    next_update: int
    revoked_serials: tuple[int, ...]
    signature: bytes = b""

    def tbs_der(self) -> bytes:
        return encode(
            Sequence_(
                [
                    Utf8String(self.issuer),
                    Integer(self.crl_number),
                    Integer(self.this_update),
                    Integer(self.next_update),
                    Sequence_([Integer(s) for s in sorted(self.revoked_serials)]),
                ]
            )
        )

    def to_der(self) -> bytes:
        return encode(
            Sequence_([OctetString(self.tbs_der()), OctetString(self.signature)])
        )

    @classmethod
    def from_der(cls, data: bytes) -> "Crl":
        try:
            outer = decode(data)
        except Asn1Error as exc:
            raise ValidationError(f"bad CRL DER: {exc}") from exc
        if (
            not isinstance(outer, Sequence_)
            or len(outer.elements) != 2
            or not isinstance(outer.elements[0], OctetString)
            or not isinstance(outer.elements[1], OctetString)
        ):
            raise ValidationError("CRL must be {tbs, sig}")
        tbs = decode(outer.elements[0].value)
        if not isinstance(tbs, Sequence_) or len(tbs.elements) != 5:
            raise ValidationError("bad CRL TBS")
        issuer, number, this_update, next_update, serials = tbs.elements
        if not (
            isinstance(issuer, Utf8String)
            and isinstance(number, Integer)
            and isinstance(this_update, Integer)
            and isinstance(next_update, Integer)
            and isinstance(serials, Sequence_)
        ):
            raise ValidationError("bad CRL TBS fields")
        revoked = []
        for element in serials.elements:
            if not isinstance(element, Integer):
                raise ValidationError("bad CRL serial entry")
            revoked.append(element.value)
        return cls(
            issuer=issuer.value,
            crl_number=number.value,
            this_update=this_update.value,
            next_update=next_update.value,
            revoked_serials=tuple(revoked),
            signature=outer.elements[1].value,
        )

    def sign_with(self, key: RsaPrivateKey) -> "Crl":
        return Crl(
            issuer=self.issuer,
            crl_number=self.crl_number,
            this_update=self.this_update,
            next_update=self.next_update,
            revoked_serials=self.revoked_serials,
            signature=key.sign(self.tbs_der()),
        )

    def verify_signature(self, key: RsaPublicKey) -> bool:
        return key.verify(self.tbs_der(), self.signature)

    def revokes(self, serial: int) -> bool:
        return serial in self.revoked_serials

    def valid_at(self, now: int) -> bool:
        return self.this_update <= now <= self.next_update
